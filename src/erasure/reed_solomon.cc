#include "erasure/reed_solomon.h"

#include <cstring>

#include "gf/gf256.h"

namespace p2p {
namespace erasure {

using gf::GF256;

util::Result<std::unique_ptr<ReedSolomon>> ReedSolomon::Create(int k, int m,
                                                               MatrixKind kind) {
  if (k < 1 || m < 0) {
    return util::Status::InvalidArgument("ReedSolomon requires k >= 1, m >= 0");
  }
  const int limit = kind == MatrixKind::kCauchy ? 256 : 255;
  if (k + m > limit) {
    return util::Status::InvalidArgument(
        "ReedSolomon over GF(256): k + m must be <= " + std::to_string(limit) +
        " for this construction");
  }
  Matrix generator(k + m, k);
  if (kind == MatrixKind::kCauchy) {
    for (int i = 0; i < k; ++i) generator.set(i, i, 1);
    if (m > 0) {
      const Matrix cauchy = Matrix::Cauchy(m, k);
      for (int r = 0; r < m; ++r) {
        std::memcpy(generator.mutable_row(k + r), cauchy.row(r),
                    static_cast<size_t>(k));
      }
    }
  } else {
    generator = Matrix::Vandermonde(k + m, k);
    P2P_RETURN_IF_ERROR(generator.MakeTopSquareIdentity());
  }
  return std::unique_ptr<ReedSolomon>(
      new ReedSolomon(k, m, kind, std::move(generator)));
}

ReedSolomon::ReedSolomon(int k, int m, MatrixKind kind, Matrix generator)
    : k_(k), m_(m), kind_(kind), generator_(std::move(generator)) {}

util::Status ReedSolomon::Encode(const std::vector<uint8_t*>& shards,
                                 size_t shard_size) const {
  if (static_cast<int>(shards.size()) != n()) {
    return util::Status::InvalidArgument("Encode expects n shard pointers");
  }
  for (int p = 0; p < m_; ++p) {
    uint8_t* out = shards[static_cast<size_t>(k_ + p)];
    std::memset(out, 0, shard_size);
    const uint8_t* coeffs = generator_.row(k_ + p);
    for (int d = 0; d < k_; ++d) {
      GF256::MulAddBuf(out, shards[static_cast<size_t>(d)], coeffs[d], shard_size);
    }
  }
  return util::Status::OK();
}

util::Status ReedSolomon::Decode(const std::vector<uint8_t*>& shards,
                                 const std::vector<bool>& present,
                                 size_t shard_size) const {
  if (static_cast<int>(shards.size()) != n() ||
      static_cast<int>(present.size()) != n()) {
    return util::Status::InvalidArgument("Decode expects n shards and n flags");
  }
  std::vector<int> available;
  available.reserve(static_cast<size_t>(n()));
  for (int i = 0; i < n(); ++i) {
    if (present[static_cast<size_t>(i)]) available.push_back(i);
  }
  if (static_cast<int>(available.size()) < k_) {
    return util::Status::FailedPrecondition(
        "unrecoverable: only " + std::to_string(available.size()) + " of " +
        std::to_string(k_) + " required shards are present");
  }

  bool all_data_present = true;
  for (int i = 0; i < k_; ++i) {
    if (!present[static_cast<size_t>(i)]) {
      all_data_present = false;
      break;
    }
  }

  if (!all_data_present) {
    // Invert the generator rows of k available shards, then rebuild the
    // missing data shards as linear combinations of the available ones.
    available.resize(static_cast<size_t>(k_));
    const Matrix sub = generator_.SelectRows(available);
    auto inv_result = sub.Inverted();
    if (!inv_result.ok()) return inv_result.status();
    const Matrix& inv = *inv_result;
    for (int d = 0; d < k_; ++d) {
      if (present[static_cast<size_t>(d)]) continue;
      uint8_t* out = shards[static_cast<size_t>(d)];
      std::memset(out, 0, shard_size);
      // Row d of inv * [available shards] reconstructs data shard d.
      for (int j = 0; j < k_; ++j) {
        GF256::MulAddBuf(out, shards[static_cast<size_t>(available[j])],
                         inv.at(d, j), shard_size);
      }
    }
  }

  // With all data shards in place, recompute any missing parity shards.
  for (int p = 0; p < m_; ++p) {
    const int idx = k_ + p;
    if (present[static_cast<size_t>(idx)]) continue;
    uint8_t* out = shards[static_cast<size_t>(idx)];
    std::memset(out, 0, shard_size);
    const uint8_t* coeffs = generator_.row(idx);
    for (int d = 0; d < k_; ++d) {
      GF256::MulAddBuf(out, shards[static_cast<size_t>(d)], coeffs[d], shard_size);
    }
  }
  return util::Status::OK();
}

}  // namespace erasure
}  // namespace p2p
