// Systematic Reed-Solomon over GF(2^8).
//
// The generator is the (k+m) x k matrix [I ; C] where C is an m x k Cauchy
// matrix on distinct field labels. Any k rows of [I ; C] form an invertible
// matrix, so any k of the n shards decode the archive - the property the
// paper's redundancy argument relies on (k = m = 128, n = 256 uses the whole
// field). A classic Vandermonde-derived construction is provided as an
// alternative for n <= 255, cross-checked in tests.

#ifndef P2P_ERASURE_REED_SOLOMON_H_
#define P2P_ERASURE_REED_SOLOMON_H_

#include <memory>
#include <string>
#include <vector>

#include "erasure/erasure_code.h"
#include "erasure/matrix.h"
#include "util/result.h"

namespace p2p {
namespace erasure {

/// \brief Systematic RS codec with a pluggable generator construction.
class ReedSolomon : public ErasureCode {
 public:
  /// Generator construction.
  enum class MatrixKind {
    kCauchy,       ///< [I ; Cauchy], valid for k + m <= 256.
    kVandermonde,  ///< Vandermonde made systematic, valid for k + m <= 255.
  };

  /// Creates a codec; fails with InvalidArgument when (k, m) is out of range
  /// for the chosen construction.
  static util::Result<std::unique_ptr<ReedSolomon>> Create(
      int k, int m, MatrixKind kind = MatrixKind::kCauchy);

  int k() const override { return k_; }
  int m() const override { return m_; }

  util::Status Encode(const std::vector<uint8_t*>& shards,
                      size_t shard_size) const override;

  util::Status Decode(const std::vector<uint8_t*>& shards,
                      const std::vector<bool>& present,
                      size_t shard_size) const override;

  std::string name() const override {
    return kind_ == MatrixKind::kCauchy ? "rs-cauchy" : "rs-vandermonde";
  }

  /// The full n x k generator matrix (top k x k block is the identity).
  const Matrix& generator() const { return generator_; }

 private:
  ReedSolomon(int k, int m, MatrixKind kind, Matrix generator);

  int k_;
  int m_;
  MatrixKind kind_;
  Matrix generator_;
};

}  // namespace erasure
}  // namespace p2p

#endif  // P2P_ERASURE_REED_SOLOMON_H_
