#include "erasure/matrix.h"

#include <cassert>
#include <cstdio>

#include "gf/gf256.h"

namespace p2p {
namespace erasure {

using gf::GF256;

Matrix::Matrix(int rows, int cols)
    : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows) * cols, 0) {
  assert(rows > 0 && cols > 0);
}

Matrix Matrix::Identity(int size) {
  Matrix m(size, size);
  for (int i = 0; i < size; ++i) m.set(i, i, 1);
  return m;
}

Matrix Matrix::Cauchy(int m, int k) {
  assert(m >= 1 && k >= 1 && m + k <= 256);
  Matrix out(m, k);
  for (int i = 0; i < m; ++i) {
    const uint8_t xi = static_cast<uint8_t>(k + i);
    for (int j = 0; j < k; ++j) {
      const uint8_t yj = static_cast<uint8_t>(j);
      out.set(i, j, GF256::Inv(GF256::Add(xi, yj)));
    }
  }
  return out;
}

Matrix Matrix::Vandermonde(int rows, int cols) {
  assert(rows >= 1 && cols >= 1 && rows <= 255);
  Matrix out(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      out.set(r, c, GF256::Pow(static_cast<uint8_t>(r), c));
    }
  }
  return out;
}

Matrix Matrix::Times(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int i = 0; i < cols_; ++i) {
      const uint8_t a = at(r, i);
      if (a == 0) continue;
      GF256::MulAddBuf(out.mutable_row(r), other.row(i), a,
                       static_cast<size_t>(other.cols_));
    }
  }
  return out;
}

Matrix Matrix::SelectRows(const std::vector<int>& row_indices) const {
  Matrix out(static_cast<int>(row_indices.size()), cols_);
  for (size_t i = 0; i < row_indices.size(); ++i) {
    const int r = row_indices[i];
    assert(r >= 0 && r < rows_);
    for (int c = 0; c < cols_; ++c) out.set(static_cast<int>(i), c, at(r, c));
  }
  return out;
}

util::Result<Matrix> Matrix::Inverted() const {
  if (rows_ != cols_) {
    return util::Status::InvalidArgument("cannot invert a non-square matrix");
  }
  const int n = rows_;
  Matrix work = *this;
  Matrix inv = Identity(n);
  for (int col = 0; col < n; ++col) {
    // Find a pivot at or below the diagonal.
    int pivot = -1;
    for (int r = col; r < n; ++r) {
      if (work.at(r, col) != 0) {
        pivot = r;
        break;
      }
    }
    if (pivot < 0) return util::Status::Corruption("singular matrix");
    if (pivot != col) {
      for (int c = 0; c < n; ++c) {
        std::swap(*(work.mutable_row(pivot) + c), *(work.mutable_row(col) + c));
        std::swap(*(inv.mutable_row(pivot) + c), *(inv.mutable_row(col) + c));
      }
    }
    // Scale the pivot row to make the diagonal 1.
    const uint8_t d = work.at(col, col);
    if (d != 1) {
      const uint8_t dinv = GF256::Inv(d);
      GF256::MulBuf(work.mutable_row(col), work.row(col), dinv,
                    static_cast<size_t>(n));
      GF256::MulBuf(inv.mutable_row(col), inv.row(col), dinv,
                    static_cast<size_t>(n));
    }
    // Eliminate the column everywhere else.
    for (int r = 0; r < n; ++r) {
      if (r == col) continue;
      const uint8_t f = work.at(r, col);
      if (f == 0) continue;
      GF256::MulAddBuf(work.mutable_row(r), work.row(col), f,
                       static_cast<size_t>(n));
      GF256::MulAddBuf(inv.mutable_row(r), inv.row(col), f,
                       static_cast<size_t>(n));
    }
  }
  return inv;
}

util::Status Matrix::MakeTopSquareIdentity() {
  const int n = cols_;
  if (rows_ < n) {
    return util::Status::InvalidArgument("matrix has fewer rows than columns");
  }
  std::vector<int> top(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) top[static_cast<size_t>(i)] = i;
  auto inv_result = SelectRows(top).Inverted();
  if (!inv_result.ok()) return inv_result.status();
  *this = Times(*inv_result);
  return util::Status::OK();
}

std::string Matrix::ToString() const {
  std::string out;
  char buf[8];
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      std::snprintf(buf, sizeof(buf), "%02x ", at(r, c));
      out += buf;
    }
    out += '\n';
  }
  return out;
}

}  // namespace erasure
}  // namespace p2p
