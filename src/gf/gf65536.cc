#include "gf/gf65536.h"

#include <cassert>
#include <vector>

namespace p2p {
namespace gf {
namespace {

struct Tables {
  std::vector<uint16_t> exp;  // 2*65535 entries, doubled to skip reductions
  std::vector<int> log;       // 65536 entries; log[0] unused

  Tables() : exp(131070), log(65536, -1) {
    uint32_t x = 1;
    for (int i = 0; i < 65535; ++i) {
      exp[static_cast<size_t>(i)] = static_cast<uint16_t>(x);
      log[x] = i;
      x <<= 1;
      if (x & 0x10000) x ^= GF65536::kPrimitivePoly;
    }
    for (int i = 65535; i < 131070; ++i) {
      exp[static_cast<size_t>(i)] = exp[static_cast<size_t>(i - 65535)];
    }
  }
};

const Tables& T() {
  static const Tables tables;
  return tables;
}

}  // namespace

uint16_t GF65536::Mul(uint16_t a, uint16_t b) {
  if (a == 0 || b == 0) return 0;
  return T().exp[static_cast<size_t>(T().log[a] + T().log[b])];
}

uint16_t GF65536::Div(uint16_t a, uint16_t b) {
  assert(b != 0);
  if (a == 0) return 0;
  return T().exp[static_cast<size_t>(T().log[a] - T().log[b] + 65535)];
}

uint16_t GF65536::Inv(uint16_t a) {
  assert(a != 0);
  return T().exp[static_cast<size_t>(65535 - T().log[a])];
}

uint16_t GF65536::Pow(uint16_t a, int e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  int64_t le = (static_cast<int64_t>(T().log[a]) * e) % 65535;
  if (le < 0) le += 65535;
  return T().exp[static_cast<size_t>(le)];
}

void GF65536::MulAddBuf(uint16_t* dst, const uint16_t* src, uint16_t c, size_t len) {
  if (c == 0) return;
  if (c == 1) {
    for (size_t i = 0; i < len; ++i) dst[i] ^= src[i];
    return;
  }
  const int lc = T().log[c];
  for (size_t i = 0; i < len; ++i) {
    const uint16_t s = src[i];
    if (s != 0) dst[i] ^= T().exp[static_cast<size_t>(lc + T().log[s])];
  }
}

}  // namespace gf
}  // namespace p2p
