// Arithmetic in GF(2^8), the field underlying the Reed-Solomon codec.
//
// The field is constructed from the primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11D). Multiplication uses log/exp tables; the
// buffer kernels additionally use a per-coefficient 256-entry product row so
// the inner loop is one table lookup per byte.

#ifndef P2P_GF_GF256_H_
#define P2P_GF_GF256_H_

#include <cstddef>
#include <cstdint>

namespace p2p {
namespace gf {

/// \brief GF(2^8) element operations. All functions are pure and thread-safe.
class GF256 {
 public:
  /// Field size.
  static constexpr int kOrder = 256;
  /// Primitive polynomial (with the x^8 term) used to build the field.
  static constexpr uint16_t kPrimitivePoly = 0x11D;
  /// Generator whose powers enumerate the multiplicative group.
  static constexpr uint8_t kGenerator = 0x02;

  /// Field addition (= subtraction = XOR).
  static uint8_t Add(uint8_t a, uint8_t b) { return a ^ b; }

  /// Field multiplication.
  static uint8_t Mul(uint8_t a, uint8_t b);

  /// Field division a / b; b must be non-zero.
  static uint8_t Div(uint8_t a, uint8_t b);

  /// Multiplicative inverse; a must be non-zero.
  static uint8_t Inv(uint8_t a);

  /// a raised to the (possibly negative) power e; Pow(0, 0) == 1.
  static uint8_t Pow(uint8_t a, int e);

  /// Discrete logarithm base kGenerator; a must be non-zero.
  static int Log(uint8_t a);

  /// kGenerator raised to e (e taken modulo 255).
  static uint8_t Exp(int e);

  /// dst[i] ^= c * src[i] for i in [0, len): the SPMV kernel of RS coding.
  static void MulAddBuf(uint8_t* dst, const uint8_t* src, uint8_t c, size_t len);

  /// dst[i] = c * src[i] for i in [0, len).
  static void MulBuf(uint8_t* dst, const uint8_t* src, uint8_t c, size_t len);

  /// dst[i] ^= src[i] for i in [0, len).
  static void AddBuf(uint8_t* dst, const uint8_t* src, size_t len);
};

}  // namespace gf
}  // namespace p2p

#endif  // P2P_GF_GF256_H_
