#include "gf/gf256.h"

#include <cassert>

namespace p2p {
namespace gf {
namespace {

// log/exp tables plus the full 256x256 product table (64 KiB, L2-resident).
// Built once at process start; read-only afterwards.
struct Tables {
  uint8_t exp[512];   // doubled so Mul can skip the mod-255 reduction
  int log[256];       // log[0] unused
  uint8_t mul[256][256];

  Tables() {
    uint16_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[i] = static_cast<uint8_t>(x);
      log[x] = i;
      x <<= 1;
      if (x & 0x100) x ^= GF256::kPrimitivePoly;
    }
    for (int i = 255; i < 512; ++i) exp[i] = exp[i - 255];
    log[0] = -1;
    for (int a = 0; a < 256; ++a) {
      mul[0][a] = 0;
      mul[a][0] = 0;
    }
    for (int a = 1; a < 256; ++a) {
      for (int b = 1; b < 256; ++b) {
        mul[a][b] = exp[log[a] + log[b]];
      }
    }
  }
};

const Tables& T() {
  static const Tables tables;
  return tables;
}

}  // namespace

uint8_t GF256::Mul(uint8_t a, uint8_t b) { return T().mul[a][b]; }

uint8_t GF256::Div(uint8_t a, uint8_t b) {
  assert(b != 0);
  if (a == 0) return 0;
  return T().exp[T().log[a] - T().log[b] + 255];
}

uint8_t GF256::Inv(uint8_t a) {
  assert(a != 0);
  return T().exp[255 - T().log[a]];
}

uint8_t GF256::Pow(uint8_t a, int e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  int le = (T().log[a] * static_cast<int64_t>(e)) % 255;
  if (le < 0) le += 255;
  return T().exp[le];
}

int GF256::Log(uint8_t a) {
  assert(a != 0);
  return T().log[a];
}

uint8_t GF256::Exp(int e) {
  int r = e % 255;
  if (r < 0) r += 255;
  return T().exp[r];
}

void GF256::MulAddBuf(uint8_t* dst, const uint8_t* src, uint8_t c, size_t len) {
  if (c == 0) return;
  if (c == 1) {
    AddBuf(dst, src, len);
    return;
  }
  const uint8_t* row = T().mul[c];
  for (size_t i = 0; i < len; ++i) dst[i] ^= row[src[i]];
}

void GF256::MulBuf(uint8_t* dst, const uint8_t* src, uint8_t c, size_t len) {
  if (c == 0) {
    for (size_t i = 0; i < len; ++i) dst[i] = 0;
    return;
  }
  if (c == 1) {
    for (size_t i = 0; i < len; ++i) dst[i] = src[i];
    return;
  }
  const uint8_t* row = T().mul[c];
  for (size_t i = 0; i < len; ++i) dst[i] = row[src[i]];
}

void GF256::AddBuf(uint8_t* dst, const uint8_t* src, size_t len) {
  size_t i = 0;
  // Word-at-a-time XOR for the bulk; the compiler vectorizes this further.
  for (; i + 8 <= len; i += 8) {
    uint64_t d, s;
    __builtin_memcpy(&d, dst + i, 8);
    __builtin_memcpy(&s, src + i, 8);
    d ^= s;
    __builtin_memcpy(dst + i, &d, 8);
  }
  for (; i < len; ++i) dst[i] ^= src[i];
}

}  // namespace gf
}  // namespace p2p
