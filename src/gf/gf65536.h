// Arithmetic in GF(2^16), used when a code needs n > 256 total blocks
// (beyond the paper's k = m = 128 configuration).

#ifndef P2P_GF_GF65536_H_
#define P2P_GF_GF65536_H_

#include <cstddef>
#include <cstdint>

namespace p2p {
namespace gf {

/// \brief GF(2^16) element operations via log/exp tables (built once).
class GF65536 {
 public:
  /// Field size.
  static constexpr int kOrder = 65536;
  /// Primitive polynomial x^16 + x^12 + x^3 + x + 1 (0x1100B).
  static constexpr uint32_t kPrimitivePoly = 0x1100B;
  /// Generator of the multiplicative group.
  static constexpr uint16_t kGenerator = 0x0002;

  /// Field addition (XOR).
  static uint16_t Add(uint16_t a, uint16_t b) { return a ^ b; }
  /// Field multiplication.
  static uint16_t Mul(uint16_t a, uint16_t b);
  /// Field division a / b; b must be non-zero.
  static uint16_t Div(uint16_t a, uint16_t b);
  /// Multiplicative inverse; a must be non-zero.
  static uint16_t Inv(uint16_t a);
  /// a raised to the (possibly negative) power e; Pow(0,0) == 1.
  static uint16_t Pow(uint16_t a, int e);

  /// dst[i] ^= c * src[i] over uint16 lanes (len in elements, not bytes).
  static void MulAddBuf(uint16_t* dst, const uint16_t* src, uint16_t c, size_t len);
};

}  // namespace gf
}  // namespace p2p

#endif  // P2P_GF_GF65536_H_
