// The link-profile registry: the vocabulary of `transfer.link=` in scenario
// text, `--links=` on sweep_demo, and `--transfer=` on scenario_tool. Each
// name resolves to one of the paper-derived `net::LinkProfile` access links
// (section 2.2.4): the 2009 reference DSL line, a 4x "modern" DSL line, and
// a symmetric FTTH line.

#ifndef P2P_TRANSFER_LINK_H_
#define P2P_TRANSFER_LINK_H_

#include <string>
#include <vector>

#include "net/bandwidth.h"
#include "util/result.h"

namespace p2p {
namespace transfer {

/// Registered link-profile names, in registration order
/// ("dsl-2009", "dsl-modern", "ftth").
std::vector<std::string> LinkProfileNames();

/// Resolves a name to its profile; errors list the registry on a miss.
util::Result<net::LinkProfile> FindLinkProfile(const std::string& name);

}  // namespace transfer
}  // namespace p2p

#endif  // P2P_TRANSFER_LINK_H_
