// The bandwidth-constrained transfer scheduler: turns a repair episode into a
// queued multi-round transfer job on the paper's section-2.2.4 link model.
//
// A maintenance job first downloads the k blocks needed for decoding from its
// online partners (download phase), then uploads the d regenerated blocks
// (upload phase). An initial-backup job skips the download phase. Jobs on the
// same link contend: each round, a source peer's uplink is split fair-share
// among everything it serves that round — a job of its own with upload bytes
// pending counts as one consumer, and each online downloader it feeds counts
// as one more. A
// downloader's aggregate rate is further capped by its own downlink. When a
// download finishes mid-round the upload phase starts in the same round with
// the leftover time budget, so the composite matches the paper's
// delta_repair = delta_download + delta_upload accounting.
//
// Determinism: jobs are processed strictly in enqueue (job-id) order, no
// randomness is consumed anywhere, and all state lives in dense per-peer
// lanes — so CRN and thread-count invariance of the surrounding sweep hold
// for free.

#ifndef P2P_TRANSFER_SCHEDULER_H_
#define P2P_TRANSFER_SCHEDULER_H_

#include <cstdint>
#include <vector>

#include "net/bandwidth.h"
#include "sim/clock.h"

namespace p2p {
namespace transfer {

using PeerId = uint32_t;

/// \brief The scheduler's read-only view of the simulated world.
///
/// Implemented by `BackupNetwork`; tests supply fakes.
class PeerDirectory {
 public:
  virtual ~PeerDirectory() = default;

  /// True iff the peer is live and online this round.
  virtual bool Online(PeerId id) const = 0;

  /// Appends the peers hosting blocks for `owner` (its download sources).
  /// May include offline peers; the scheduler filters with Online().
  virtual void AppendSources(PeerId owner, std::vector<PeerId>* out) const = 0;
};

/// \brief One queued transfer (at most one per owner).
struct TransferJob {
  uint64_t id = 0;               ///< Enqueue sequence number; processing order.
  PeerId owner = 0;
  uint32_t incarnation = 0;      ///< Owner incarnation at enqueue time.
  bool initial = false;          ///< Initial backup (no download phase).
  double down_remaining = 0.0;   ///< Bytes left in the download phase.
  double up_remaining = 0.0;     ///< Bytes left in the upload phase.
  sim::Round enqueued = 0;
  sim::Round download_done = -1; ///< Round the download phase finished, or -1.
};

/// \brief Delivered by Tick() when a job's last byte moves.
struct TransferCompletion {
  PeerId owner = 0;
  uint32_t incarnation = 0;
  bool initial = false;
  sim::Round enqueued = 0;
  sim::Round download_rounds = 0;  ///< Rounds from enqueue to download done.
};

/// \brief Lifetime counters, flushed to trace counters by the scenario layer.
struct SchedulerStats {
  uint64_t enqueued = 0;
  uint64_t completed = 0;
  uint64_t cancelled = 0;
  uint64_t ticks = 0;
  double bytes_downloaded = 0.0;
  double bytes_uploaded = 0.0;
  int queue_depth_peak = 0;
};

/// \brief Uplink accounting for the most recent Tick().
struct TickSample {
  double used_bytes = 0.0;      ///< Uplink bytes moved (source + owner uploads).
  double capacity_bytes = 0.0;  ///< Uplink-round capacity of loaded peers.
};

/// \brief Fair-share multi-round transfer scheduler for one link profile.
class TransferScheduler {
 public:
  /// `id_capacity` bounds peer ids (dense lanes); `archive_bytes`/`k`/`m`
  /// define the block size via `net::RepairCostModel`.
  TransferScheduler(const net::LinkProfile& link, uint32_t id_capacity,
                    uint64_t archive_bytes, int k, int m);

  /// Queues a job for `owner` (which must not already have one). Maintenance
  /// jobs (`initial == false`) download k blocks then upload `upload_blocks`;
  /// initial jobs only upload.
  void Enqueue(PeerId owner, uint32_t incarnation, bool initial,
               int upload_blocks, sim::Round now);

  /// Drops `owner`'s job if present (departure / archive loss). Returns
  /// whether a job was dropped.
  bool Cancel(PeerId owner);

  bool HasJob(PeerId owner) const { return has_job_[owner]; }
  int QueueDepth() const { return static_cast<int>(jobs_.size()); }

  /// Advances every job by one round of link time; completions are appended
  /// to `done` in job order. Jobs whose owner is offline are paused; download
  /// jobs with no online source stall without consuming capacity.
  void Tick(sim::Round now, const PeerDirectory& directory,
            std::vector<TransferCompletion>* done);

  const SchedulerStats& stats() const { return stats_; }
  const TickSample& last_tick() const { return last_tick_; }

  /// Per-peer uplink bytes consumed in the most recent Tick() (dense by peer
  /// id); exposed for the no-oversubscription property test.
  const std::vector<double>& uplink_used() const { return uplink_used_; }
  /// Per-owner download bytes received in the most recent Tick().
  const std::vector<double>& downlink_used() const { return downlink_used_; }

  double uplink_bytes_per_round() const { return up_cap_; }
  double downlink_bytes_per_round() const { return down_cap_; }
  uint64_t block_bytes() const { return model_.block_bytes(); }
  const net::RepairCostModel& model() const { return model_; }

 private:
  void AddLoad(PeerId id, double amount);

  net::RepairCostModel model_;
  double up_cap_ = 0.0;    ///< Uplink bytes per round.
  double down_cap_ = 0.0;  ///< Downlink bytes per round.

  std::vector<TransferJob> jobs_;  ///< Enqueue order; erased order-preserving.
  std::vector<uint8_t> has_job_;   ///< Dense by owner id.
  uint64_t next_job_id_ = 0;

  // Per-tick scratch, dense by peer id, reset via `touched_`.
  std::vector<double> load_;
  std::vector<double> uplink_used_;
  std::vector<double> downlink_used_;
  std::vector<PeerId> touched_;
  std::vector<PeerId> sources_;

  SchedulerStats stats_;
  TickSample last_tick_;
};

}  // namespace transfer
}  // namespace p2p

#endif  // P2P_TRANSFER_SCHEDULER_H_
