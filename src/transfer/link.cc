#include "transfer/link.h"

namespace p2p {
namespace transfer {

namespace {

const net::LinkProfile* Registry(size_t* count) {
  static const net::LinkProfile kProfiles[] = {
      net::LinkProfile::Dsl2009(),
      net::LinkProfile::ModernDsl(),
      net::LinkProfile::Ftth(),
  };
  *count = sizeof(kProfiles) / sizeof(kProfiles[0]);
  return kProfiles;
}

}  // namespace

std::vector<std::string> LinkProfileNames() {
  size_t count = 0;
  const net::LinkProfile* profiles = Registry(&count);
  std::vector<std::string> names;
  names.reserve(count);
  for (size_t i = 0; i < count; ++i) names.push_back(profiles[i].name);
  return names;
}

util::Result<net::LinkProfile> FindLinkProfile(const std::string& name) {
  size_t count = 0;
  const net::LinkProfile* profiles = Registry(&count);
  for (size_t i = 0; i < count; ++i) {
    if (profiles[i].name == name) return profiles[i];
  }
  std::string known;
  for (size_t i = 0; i < count; ++i) {
    if (!known.empty()) known += ", ";
    known += profiles[i].name;
  }
  return util::Status::InvalidArgument("unknown link profile: '" + name +
                                       "' (known: " + known + ")");
}

}  // namespace transfer
}  // namespace p2p
