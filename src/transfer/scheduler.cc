#include "transfer/scheduler.h"

#include <algorithm>
#include <cassert>

#include "trace/trace.h"

namespace p2p {
namespace transfer {

namespace {
constexpr double kSecondsPerRound = 3600.0;  // 1 round = 1 hour.
}  // namespace

TransferScheduler::TransferScheduler(const net::LinkProfile& link,
                                     uint32_t id_capacity,
                                     uint64_t archive_bytes, int k, int m)
    : model_(link, archive_bytes, k, m),
      up_cap_(link.upload_bytes_per_s * kSecondsPerRound),
      down_cap_(link.download_bytes_per_s * kSecondsPerRound),
      has_job_(id_capacity, 0),
      load_(id_capacity, 0.0),
      uplink_used_(id_capacity, 0.0),
      downlink_used_(id_capacity, 0.0) {}

void TransferScheduler::Enqueue(PeerId owner, uint32_t incarnation,
                                bool initial, int upload_blocks,
                                sim::Round now) {
  TRACE_SCOPE("transfer/enqueue");
  assert(owner < has_job_.size());
  assert(!has_job_[owner] && "one transfer job per owner");
  TransferJob job;
  job.id = next_job_id_++;
  job.owner = owner;
  job.incarnation = incarnation;
  job.initial = initial;
  job.down_remaining =
      initial ? 0.0
              : static_cast<double>(model_.block_bytes()) * model_.k();
  job.up_remaining =
      static_cast<double>(model_.block_bytes()) * upload_blocks;
  job.enqueued = now;
  jobs_.push_back(job);
  has_job_[owner] = 1;
  ++stats_.enqueued;
  stats_.queue_depth_peak =
      std::max(stats_.queue_depth_peak, QueueDepth());
}

bool TransferScheduler::Cancel(PeerId owner) {
  if (owner >= has_job_.size() || !has_job_[owner]) return false;
  for (size_t i = 0; i < jobs_.size(); ++i) {
    if (jobs_[i].owner == owner) {
      jobs_.erase(jobs_.begin() + static_cast<ptrdiff_t>(i));
      break;
    }
  }
  has_job_[owner] = 0;
  ++stats_.cancelled;
  return true;
}

void TransferScheduler::AddLoad(PeerId id, double amount) {
  if (load_[id] == 0.0) touched_.push_back(id);
  load_[id] += amount;
}

void TransferScheduler::Tick(sim::Round now, const PeerDirectory& directory,
                             std::vector<TransferCompletion>* done) {
  TRACE_SCOPE("transfer/tick");
  ++stats_.ticks;
  for (PeerId id : touched_) {
    load_[id] = 0.0;
    uplink_used_[id] = 0.0;
    downlink_used_[id] = 0.0;
  }
  touched_.clear();
  last_tick_ = TickSample{};
  if (jobs_.empty()) return;

  // Pass 0: count this round's uplink consumers per peer. A job with upload
  // bytes pending reserves one share of its owner's uplink (even while still
  // downloading, so an intra-round phase switch cannot oversubscribe a source
  // that is also an owner); a job in download phase additionally loads each
  // online source's uplink. Offline owners are paused and consume nothing.
  for (const TransferJob& job : jobs_) {
    if (!directory.Online(job.owner)) continue;
    if (job.up_remaining > 0.0) AddLoad(job.owner, 1.0);
    if (job.down_remaining > 0.0) {
      sources_.clear();
      directory.AppendSources(job.owner, &sources_);
      for (PeerId src : sources_) {
        if (directory.Online(src)) AddLoad(src, 1.0);
      }
    }
  }

  // Pass 1: move bytes, strictly in job (enqueue) order. Rates derive only
  // from the load lanes, so the order never changes what a job receives.
  double tick_used = 0.0;
  for (TransferJob& job : jobs_) {
    if (!directory.Online(job.owner)) continue;
    double budget = 1.0;  // Fraction of the round still available to the job.
    if (job.down_remaining > 0.0) {
      sources_.clear();
      directory.AppendSources(job.owner, &sources_);
      double sum_shares = 0.0;
      for (PeerId src : sources_) {
        if (directory.Online(src)) sum_shares += up_cap_ / load_[src];
      }
      if (sum_shares <= 0.0) continue;  // No online source: stall.
      const double rate = std::min(down_cap_, sum_shares);
      const double scale = rate / sum_shares;
      double used_fraction;  // of the round
      double moved;
      if (rate * budget >= job.down_remaining) {
        moved = job.down_remaining;
        used_fraction = moved / rate;
        job.down_remaining = 0.0;
        job.download_done = now;
      } else {
        moved = rate * budget;
        used_fraction = budget;
        job.down_remaining -= moved;
      }
      budget -= used_fraction;
      stats_.bytes_downloaded += moved;
      tick_used += moved;
      downlink_used_[job.owner] += moved;
      for (PeerId src : sources_) {
        if (directory.Online(src)) {
          uplink_used_[src] += (up_cap_ / load_[src]) * scale * used_fraction;
        }
      }
    }
    if (job.down_remaining == 0.0 && job.up_remaining > 0.0 && budget > 0.0) {
      // A download that finished this round starts uploading immediately with
      // the leftover time budget; its uplink share was already reserved in
      // pass 0, so the owner's per-round uplink cap holds exactly.
      const double rate = up_cap_ / std::max(load_[job.owner], 1.0);
      const double moved = std::min(rate * budget, job.up_remaining);
      job.up_remaining -= moved;
      stats_.bytes_uploaded += moved;
      tick_used += moved;
      uplink_used_[job.owner] += moved;
    }
  }

  last_tick_.used_bytes = tick_used;
  last_tick_.capacity_bytes = static_cast<double>(touched_.size()) * up_cap_;

  // Harvest completions in job order, erasing order-preserving.
  size_t keep = 0;
  for (size_t i = 0; i < jobs_.size(); ++i) {
    TransferJob& job = jobs_[i];
    if (job.down_remaining <= 0.0 && job.up_remaining <= 0.0) {
      TransferCompletion completion;
      completion.owner = job.owner;
      completion.incarnation = job.incarnation;
      completion.initial = job.initial;
      completion.enqueued = job.enqueued;
      completion.download_rounds =
          job.download_done >= 0 ? job.download_done - job.enqueued : 0;
      done->push_back(completion);
      has_job_[job.owner] = 0;
      ++stats_.completed;
      continue;
    }
    if (keep != i) jobs_[keep] = jobs_[i];
    ++keep;
  }
  jobs_.resize(keep);
}

}  // namespace transfer
}  // namespace p2p
