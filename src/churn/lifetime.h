// Lifetime distributions: how long a peer stays in the system before leaving
// definitively. The paper's profile table uses bounded ranges; the Pareto
// model realizes the heavy-tailed lifetimes of [5] ("lifetimes in a
// peer-to-peer system follow a Pareto distribution") for ablation studies.

#ifndef P2P_CHURN_LIFETIME_H_
#define P2P_CHURN_LIFETIME_H_

#include <memory>
#include <string>

#include "sim/clock.h"
#include "util/rng.h"

namespace p2p {
namespace churn {

/// \brief Distribution of total peer lifetime, in rounds.
class LifetimeModel {
 public:
  virtual ~LifetimeModel() = default;

  /// Draws a lifetime; sim::kNever means the peer never departs.
  virtual sim::Round Sample(util::Rng* rng) const = 0;

  /// Mean lifetime in rounds (sim::kNever for unbounded models); used by
  /// analytic sanity checks and the proactive-repair estimator.
  virtual double MeanRounds() const = 0;

  /// Display name for reports.
  virtual std::string name() const = 0;
};

/// Peer never departs (the paper's Durable profile: "unlimited").
class UnlimitedLifetime : public LifetimeModel {
 public:
  sim::Round Sample(util::Rng* rng) const override;
  double MeanRounds() const override;
  std::string name() const override { return "unlimited"; }
};

/// Uniform lifetime over [lo, hi] rounds (the paper's range notation,
/// e.g. Stable "1.5 - 3.5 years").
class UniformLifetime : public LifetimeModel {
 public:
  UniformLifetime(sim::Round lo, sim::Round hi);
  sim::Round Sample(util::Rng* rng) const override;
  double MeanRounds() const override;
  std::string name() const override { return "uniform"; }

 private:
  sim::Round lo_;
  sim::Round hi_;
};

/// Pareto lifetime with minimum `scale` rounds and tail exponent `shape`.
/// Under this model, expected residual lifetime grows linearly with age -
/// the precise sense in which "the longer a peer has been in the system, the
/// longer it is expected to stay".
class ParetoLifetime : public LifetimeModel {
 public:
  ParetoLifetime(double scale_rounds, double shape);
  sim::Round Sample(util::Rng* rng) const override;
  double MeanRounds() const override;
  std::string name() const override { return "pareto"; }

  double shape() const { return shape_; }
  double scale() const { return scale_; }

 private:
  double scale_;
  double shape_;
};

/// Memoryless exponential lifetime (a pessimistic control: age carries no
/// information, so lifetime-aware selection should show no benefit).
class ExponentialLifetime : public LifetimeModel {
 public:
  explicit ExponentialLifetime(double mean_rounds);
  sim::Round Sample(util::Rng* rng) const override;
  double MeanRounds() const override;
  std::string name() const override { return "exponential"; }

 private:
  double mean_;
};

}  // namespace churn
}  // namespace p2p

#endif  // P2P_CHURN_LIFETIME_H_
