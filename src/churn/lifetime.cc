#include "churn/lifetime.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace p2p {
namespace churn {

sim::Round UnlimitedLifetime::Sample(util::Rng* rng) const {
  rng->NextDouble();  // keep streams aligned across profile mixes
  return sim::kNever;
}

double UnlimitedLifetime::MeanRounds() const {
  return static_cast<double>(sim::kNever);
}

UniformLifetime::UniformLifetime(sim::Round lo, sim::Round hi) : lo_(lo), hi_(hi) {
  assert(lo >= 1 && lo <= hi);
}

sim::Round UniformLifetime::Sample(util::Rng* rng) const {
  return rng->UniformInt(lo_, hi_);
}

double UniformLifetime::MeanRounds() const {
  return 0.5 * (static_cast<double>(lo_) + static_cast<double>(hi_));
}

ParetoLifetime::ParetoLifetime(double scale_rounds, double shape)
    : scale_(scale_rounds), shape_(shape) {
  assert(scale_rounds >= 1.0 && shape > 0.0);
}

sim::Round ParetoLifetime::Sample(util::Rng* rng) const {
  const double v = rng->Pareto(scale_, shape_);
  if (v >= static_cast<double>(sim::kNever)) return sim::kNever;
  return std::max<sim::Round>(1, static_cast<sim::Round>(v));
}

double ParetoLifetime::MeanRounds() const {
  if (shape_ <= 1.0) return static_cast<double>(sim::kNever);  // infinite mean
  return scale_ * shape_ / (shape_ - 1.0);
}

ExponentialLifetime::ExponentialLifetime(double mean_rounds) : mean_(mean_rounds) {
  assert(mean_rounds >= 1.0);
}

sim::Round ExponentialLifetime::Sample(util::Rng* rng) const {
  return std::max<sim::Round>(1, static_cast<sim::Round>(rng->Exponential(mean_)));
}

double ExponentialLifetime::MeanRounds() const { return mean_; }

}  // namespace churn
}  // namespace p2p
