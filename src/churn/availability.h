// Availability: the fraction of time a peer is online while it is a member
// of the system (paper profile table: Durable 95%, Stable 87%, Unstable 75%,
// Erratic 33%).
//
// The process is an alternating renewal of online/offline sessions with
// geometric (memoryless, integer-round) durations. Two presets matter:
//  * DiurnalSessions: mean cycle of ~1 day, matching home machines that are
//    switched on/off daily; the library default.
//  * BernoulliRounds: session means chosen so each round is an independent
//    coin flip - the most literal reading of a round-based simulator.
// Both have stationary online probability exactly equal to `availability`.

#ifndef P2P_CHURN_AVAILABILITY_H_
#define P2P_CHURN_AVAILABILITY_H_

#include <string>

#include "sim/clock.h"
#include "util/rng.h"

namespace p2p {
namespace churn {

/// \brief Alternating geometric on/off session process.
class SessionProcess {
 public:
  /// Builds a process from mean online/offline session lengths (rounds >= 1).
  SessionProcess(double mean_online_rounds, double mean_offline_rounds);

  /// Process whose stationary online share is `availability`, with sessions
  /// scaled to a mean on+off cycle of `cycle_rounds` (default one day).
  static SessionProcess DiurnalSessions(double availability,
                                        double cycle_rounds = sim::kRoundsPerDay);

  /// Process equivalent to flipping an `availability` coin each round:
  /// mean online run 1/(1-a), mean offline run 1/a.
  static SessionProcess BernoulliRounds(double availability);

  /// Draws the length of the next online session, in rounds (>= 1).
  sim::Round SampleOnline(util::Rng* rng) const;

  /// Draws the length of the next offline session, in rounds (>= 1).
  sim::Round SampleOffline(util::Rng* rng) const;

  /// Stationary probability of being online.
  double StationaryAvailability() const;

  /// True with the stationary probability: used to draw the initial state.
  bool SampleInitialOnline(util::Rng* rng) const;

  double mean_online() const { return mean_online_; }
  double mean_offline() const { return mean_offline_; }

 private:
  double mean_online_;
  double mean_offline_;
};

}  // namespace churn
}  // namespace p2p

#endif  // P2P_CHURN_AVAILABILITY_H_
