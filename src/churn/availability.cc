#include "churn/availability.h"

#include <algorithm>
#include <cassert>

namespace p2p {
namespace churn {

SessionProcess::SessionProcess(double mean_online_rounds, double mean_offline_rounds)
    : mean_online_(mean_online_rounds), mean_offline_(mean_offline_rounds) {
  assert(mean_online_rounds >= 1.0 && mean_offline_rounds >= 1.0);
}

SessionProcess SessionProcess::DiurnalSessions(double availability,
                                               double cycle_rounds) {
  assert(availability > 0.0 && availability < 1.0);
  // Clamp both means at one round; the clamp skews stationary availability
  // only when a*cycle or (1-a)*cycle < 1, i.e. extreme availabilities on
  // short cycles, where the Bernoulli preset is the better choice anyway.
  const double on = std::max(1.0, availability * cycle_rounds);
  const double off = std::max(1.0, (1.0 - availability) * cycle_rounds);
  return SessionProcess(on, off);
}

SessionProcess SessionProcess::BernoulliRounds(double availability) {
  assert(availability > 0.0 && availability < 1.0);
  return SessionProcess(1.0 / (1.0 - availability), 1.0 / availability);
}

sim::Round SessionProcess::SampleOnline(util::Rng* rng) const {
  return rng->Geometric(mean_online_);
}

sim::Round SessionProcess::SampleOffline(util::Rng* rng) const {
  return rng->Geometric(mean_offline_);
}

double SessionProcess::StationaryAvailability() const {
  return mean_online_ / (mean_online_ + mean_offline_);
}

bool SessionProcess::SampleInitialOnline(util::Rng* rng) const {
  return rng->Bernoulli(StationaryAvailability());
}

}  // namespace churn
}  // namespace p2p
