// Peer behaviour profiles (paper, section 4.1.1):
//
//   Profile   Proportion  Life expectancy   Availability
//   Durable   10%         unlimited         95%
//   Stable    25%         1.5 - 3.5 years   87%
//   Unstable  30%         3 - 18 months     75%
//   Erratic   35%         1 - 3 months      33%
//
// "Each peer belongs to a profile and it cannot change during the
// simulation. A peer cannot know to which profile an other peer belongs."

#ifndef P2P_CHURN_PROFILE_H_
#define P2P_CHURN_PROFILE_H_

#include <memory>
#include <string>
#include <vector>

#include "churn/availability.h"
#include "churn/lifetime.h"
#include "util/result.h"
#include "util/rng.h"

namespace p2p {
namespace churn {

/// \brief One behaviour class: lifetime distribution + availability process.
struct Profile {
  std::string name;
  double proportion = 0.0;  ///< population share in [0, 1]
  std::shared_ptr<const LifetimeModel> lifetime;
  SessionProcess sessions{1.0, 1.0};
  double availability = 0.0;  ///< nominal availability, for reporting
};

/// \brief A complete population mix; proportions must sum to 1.
class ProfileSet {
 public:
  /// Validates and wraps a list of profiles.
  static util::Result<ProfileSet> Create(std::vector<Profile> profiles);

  /// The four-profile mix of the paper's evaluation, with availability
  /// sessions built by `session_factory` (defaults to diurnal sessions).
  static ProfileSet Paper();

  /// Same mix but with Bernoulli per-round availability.
  static ProfileSet PaperBernoulli();

  /// A mix with every profile's lifetime replaced by one shared Pareto
  /// model (ablation A2); availabilities keep the paper values.
  static ProfileSet ParetoMix(double scale_rounds, double shape);

  /// Number of profiles.
  size_t size() const { return profiles_.size(); }

  /// Profile by index.
  const Profile& operator[](size_t i) const { return profiles_[i]; }

  /// Draws a profile index according to the proportions.
  uint32_t SampleIndex(util::Rng* rng) const;

 private:
  explicit ProfileSet(std::vector<Profile> profiles);

  std::vector<Profile> profiles_;
  std::vector<double> cumulative_;
};

}  // namespace churn
}  // namespace p2p

#endif  // P2P_CHURN_PROFILE_H_
