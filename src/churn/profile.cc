#include "churn/profile.h"

#include <cmath>

namespace p2p {
namespace churn {
namespace {

Profile MakeProfile(std::string name, double proportion,
                    std::shared_ptr<const LifetimeModel> lifetime,
                    double availability, bool bernoulli) {
  Profile p;
  p.name = std::move(name);
  p.proportion = proportion;
  p.lifetime = std::move(lifetime);
  p.availability = availability;
  p.sessions = bernoulli ? SessionProcess::BernoulliRounds(availability)
                         : SessionProcess::DiurnalSessions(availability);
  return p;
}

std::vector<Profile> PaperProfiles(bool bernoulli) {
  using sim::MonthsToRounds;
  using sim::YearsToRounds;
  std::vector<Profile> out;
  out.push_back(MakeProfile("durable", 0.10,
                            std::make_shared<UnlimitedLifetime>(), 0.95, bernoulli));
  out.push_back(MakeProfile(
      "stable", 0.25,
      std::make_shared<UniformLifetime>(YearsToRounds(1.5), YearsToRounds(3.5)),
      0.87, bernoulli));
  out.push_back(MakeProfile(
      "unstable", 0.30,
      std::make_shared<UniformLifetime>(MonthsToRounds(3), MonthsToRounds(18)),
      0.75, bernoulli));
  out.push_back(MakeProfile(
      "erratic", 0.35,
      std::make_shared<UniformLifetime>(MonthsToRounds(1), MonthsToRounds(3)),
      0.33, bernoulli));
  return out;
}

}  // namespace

ProfileSet::ProfileSet(std::vector<Profile> profiles)
    : profiles_(std::move(profiles)) {
  cumulative_.reserve(profiles_.size());
  double acc = 0.0;
  for (const Profile& p : profiles_) {
    acc += p.proportion;
    cumulative_.push_back(acc);
  }
  cumulative_.back() = 1.0;  // absorb rounding
}

util::Result<ProfileSet> ProfileSet::Create(std::vector<Profile> profiles) {
  if (profiles.empty()) {
    return util::Status::InvalidArgument("profile set must not be empty");
  }
  double total = 0.0;
  for (const Profile& p : profiles) {
    if (p.proportion < 0.0) {
      return util::Status::InvalidArgument("negative profile proportion");
    }
    if (p.lifetime == nullptr) {
      return util::Status::InvalidArgument("profile missing lifetime model");
    }
    total += p.proportion;
  }
  if (std::abs(total - 1.0) > 1e-9) {
    return util::Status::InvalidArgument("profile proportions must sum to 1");
  }
  return ProfileSet(std::move(profiles));
}

ProfileSet ProfileSet::Paper() { return ProfileSet(PaperProfiles(false)); }

ProfileSet ProfileSet::PaperBernoulli() { return ProfileSet(PaperProfiles(true)); }

ProfileSet ProfileSet::ParetoMix(double scale_rounds, double shape) {
  auto shared = std::make_shared<ParetoLifetime>(scale_rounds, shape);
  std::vector<Profile> profiles = PaperProfiles(false);
  for (Profile& p : profiles) p.lifetime = shared;
  return ProfileSet(std::move(profiles));
}

uint32_t ProfileSet::SampleIndex(util::Rng* rng) const {
  const double u = rng->NextDouble();
  for (size_t i = 0; i < cumulative_.size(); ++i) {
    if (u < cumulative_[i]) return static_cast<uint32_t>(i);
  }
  return static_cast<uint32_t>(cumulative_.size() - 1);
}

}  // namespace churn
}  // namespace p2p
