// End-to-end data-path demo: the complete backup/restore cycle of paper
// section 2.2 on real bytes.
//
//  1. Build archives from a synthetic home directory (full files + deltas).
//  2. Encrypt each archive with a session key, erasure-code it (k=32, m=32
//     here; 128/128 works identically), and hash the shards into a Merkle
//     tree for proofs of storage.
//  3. Seal a master block with a passphrase.
//  4. Simulate catastrophe: the user machine dies AND half the partners
//     disappear.
//  5. Restore: open the master block, gather surviving shards, decode,
//     decrypt, reconstruct every file, verify digests.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "archive/builder.h"
#include "archive/delta.h"
#include "archive/master_block.h"
#include "backup/pipeline.h"
#include "crypto/proof_of_storage.h"
#include "util/rng.h"

using namespace p2p;

namespace {

std::vector<uint8_t> SyntheticFile(util::Rng* rng, size_t size) {
  std::vector<uint8_t> out(size);
  for (auto& b : out) b = static_cast<uint8_t>(rng->NextU32());
  return out;
}

}  // namespace

int main() {
  util::Rng rng(2026);
  constexpr int kDataShards = 32;
  constexpr int kParityShards = 32;

  // --- 1. The user's files, including an edited second version. ---
  std::map<std::string, std::vector<uint8_t>> files;
  files["photos/trip.raw"] = SyntheticFile(&rng, 300'000);
  files["docs/thesis.tex"] = SyntheticFile(&rng, 120'000);
  files["mail/inbox.mbox"] = SyntheticFile(&rng, 80'000);
  auto thesis_v2 = files["docs/thesis.tex"];
  thesis_v2[5'000] ^= 0xff;  // one edit
  thesis_v2.insert(thesis_v2.begin() + 60'000, {'n', 'e', 'w'});

  archive::BackupBuilder builder(/*max_archive_bytes=*/384 * 1024);
  for (const auto& [path, content] : files) {
    if (auto st = builder.AddFile(path, content); !st.ok()) {
      std::printf("AddFile(%s) failed: %s\n", path.c_str(),
                  st.ToString().c_str());
      return 1;
    }
  }
  if (auto st = builder.AddFileVersion("docs/thesis.tex", thesis_v2,
                                       files["docs/thesis.tex"]);
      !st.ok()) {
    std::printf("AddFileVersion failed: %s\n", st.ToString().c_str());
    return 1;
  }
  auto archives = builder.TakeArchives();
  archives.push_back(builder.BuildMetadataArchive());
  std::printf("built %zu archives (incl. metadata) from %zu files\n",
              archives.size(), files.size() + 1);

  // --- 2. Encode every archive into encrypted shards. ---
  auto pipeline = backup::BackupPipeline::Create(kDataShards, kParityShards);
  if (!pipeline.ok()) return 1;
  archive::MasterBlock master;
  master.owner_id = 1;
  master.sequence = 1;
  std::vector<backup::EncodedArchive> encoded;
  for (const auto& a : archives) {
    auto enc = (*pipeline)->Encode(a, &rng);
    if (!enc.ok()) return 1;
    auto rec = enc->ToRecord(kDataShards, kParityShards,
                             a.id() == archive::kMetadataArchiveId);
    // Assign each shard to a partner peer id (simulated placement).
    for (int b = 0; b < kDataShards + kParityShards; ++b) {
      rec.block_hosts.push_back(1000 + static_cast<uint32_t>(b));
    }
    master.archives.push_back(rec);
    encoded.push_back(std::move(enc).value());
    std::printf("archive %llu: %zu bytes -> %d shards of %zu bytes\n",
                static_cast<unsigned long long>(
                    master.archives.back().archive_id),
                static_cast<size_t>(master.archives.back().archive_size),
                kDataShards + kParityShards,
                encoded.back().shard_size);
  }

  // Proof of storage: audit one partner before trusting it.
  crypto::StorageAuditor auditor(encoded[0].shards[0], 4, &rng);
  const auto challenge = auditor.NextChallenge();
  const auto proof =
      crypto::StorageAuditor::Respond(encoded[0].shards[0], challenge);
  std::printf("proof-of-storage audit of partner 1000: %s\n",
              auditor.Verify(proof) ? "PASS" : "FAIL");

  // --- 3. Seal the master block. ---
  const auto sealed = master.Seal("correct horse battery staple");
  std::printf("master block sealed: %zu bytes\n", sealed.size());

  // --- 4. Catastrophe: lose the machine and half the partners. ---
  util::Rng disaster(13);
  std::vector<std::vector<bool>> survivors;
  for (const auto& enc : encoded) {
    std::vector<bool> present(enc.shards.size(), false);
    for (uint32_t keep : disaster.SampleIndices(
             static_cast<uint32_t>(enc.shards.size()), kDataShards)) {
      present[keep] = true;  // exactly k survivors: worst recoverable case
    }
    survivors.push_back(present);
  }
  std::printf("disaster: every archive reduced to %d of %d shards\n",
              kDataShards, kDataShards + kParityShards);

  // --- 5. Restore from the network. ---
  auto opened = archive::MasterBlock::Open(sealed, "correct horse battery staple");
  if (!opened.ok()) {
    std::printf("FAILED to open master block\n");
    return 1;
  }
  size_t verified = 0, restored_files = 0;
  for (size_t i = 0; i < encoded.size(); ++i) {
    const auto& rec = opened->archives[i];
    auto restored = (*pipeline)->Decode(
        encoded[i].shards, survivors[i], encoded[i].shard_size,
        rec.archive_size, rec.archive_digest, rec.session_key, rec.archive_id);
    if (!restored.ok()) {
      std::printf("FAILED to restore archive %llu: %s\n",
                  static_cast<unsigned long long>(rec.archive_id),
                  restored.status().ToString().c_str());
      return 1;
    }
    ++verified;
    for (const auto& entry : restored->entries()) {
      if (entry.kind == archive::EntryKind::kFull &&
          files.count(entry.path) > 0 && entry.payload == files[entry.path]) {
        ++restored_files;
      }
      if (entry.kind == archive::EntryKind::kDelta) {
        auto applied = archive::ApplyDelta(files[entry.path], entry.payload);
        if (applied.ok() && *applied == thesis_v2) ++restored_files;
      }
    }
  }
  std::printf(
      "restored %zu archives, %zu file versions verified bit-exact\n"
      "wrong passphrase rejected: %s\n",
      verified, restored_files,
      archive::MasterBlock::Open(sealed, "wrong").ok() ? "NO (bug!)" : "yes");
  return 0;
}
