// Mini threshold study: the figure 1 + figure 2 trade-off on one screen.
// "To decide on a good repair threshold, we have to find a good compromise
// between the loss rate and the repair rate." (paper 4.2.1)
//
//   ./examples/threshold_study [--peers=1200] [--days=400]
//                              [--scenario=<name|file>]
//
// The threshold grid runs through the parallel sweep runner; the world is a
// scenario, so `--scenario=mass-exit` shows the same trade-off under a
// correlated departure wave.

#include <cstdio>
#include <iostream>

#include "metrics/categories.h"
#include "scenario/registry.h"
#include "sweep/runner.h"
#include "sweep/spec.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace p2p;

  sweep::SweepSpec spec;
  spec.base.peers = 1200;
  spec.base.rounds = 400 * sim::kRoundsPerDay;
  spec.repair_thresholds = {132, 140, 148, 156, 164};

  int64_t days = 0;
  int threads = 0;

  util::FlagSet flags;
  scenario::ScenarioFlags scale;
  scale.Register(&flags);
  flags.Int64("days", &days, "days to simulate per threshold (0 = default)");
  flags.Int32("threads", &threads, "worker threads (0 = hardware)");
  if (auto st = flags.Parse(argc, argv); !st.ok()) {
    std::cerr << st.ToString() << "\n" << flags.Usage(argv[0]);
    return 1;
  }
  if (auto st = scale.Apply(&spec.base); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  if (days > 0) spec.base.rounds = days * sim::kRoundsPerDay;

  sweep::RunnerOptions ropts;
  ropts.threads = threads;
  const auto results = sweep::RunSweep(spec, ropts);
  if (!results.ok()) {
    std::cerr << results.status().ToString() << "\n";
    return 1;
  }

  util::Table t({"threshold", "repairs/1000/day (all)", "newcomer repairs",
                 "losses/1000/day (newcomers)", "total losses"});
  for (const sweep::CellResult& r : *results) {
    const metrics::RunReport& report = r.outcome.report;
    const auto& repairs_1k = report.PerCategory("repairs_1k_day");
    const auto& mean_population = report.PerCategory("mean_population");
    double all_rate = 0;
    for (int c = 0; c < metrics::kCategoryCount; ++c) {
      all_rate += repairs_1k[static_cast<size_t>(c)] *
                  mean_population[static_cast<size_t>(c)];
    }
    all_rate /= static_cast<double>(spec.base.peers);
    t.BeginRow();
    t.Add(r.cell.scenario.options.repair_threshold);
    t.Add(all_rate, 3);
    t.Add(repairs_1k[0], 3);
    t.Add(report.PerCategory("losses_1k_day")[0], 4);
    t.Add(report.Count("losses"));
  }
  t.RenderPretty(std::cout);
  std::printf(
      "\nreading: repairs rise with the threshold while losses fall; the\n"
      "paper picks 148 as the smallest threshold with an acceptable loss "
      "rate.\n");
  return 0;
}
