// Mini threshold study: the figure 1 + figure 2 trade-off on one screen.
// "To decide on a good repair threshold, we have to find a good compromise
// between the loss rate and the repair rate." (paper 4.2.1)
//
//   ./examples/threshold_study [--peers=1200] [--days=400]

#include <cstdio>
#include <iostream>

#include "backup/network.h"
#include "churn/profile.h"
#include "sim/engine.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  int64_t peers = 1200;
  int64_t days = 400;
  int64_t seed = 42;

  p2p::util::FlagSet flags;
  flags.Int64("peers", &peers, "population size");
  flags.Int64("days", &days, "days to simulate per threshold");
  flags.Int64("seed", &seed, "random seed");
  if (auto st = flags.Parse(argc, argv); !st.ok()) {
    std::cerr << st.ToString() << "\n" << flags.Usage(argv[0]);
    return 1;
  }

  const p2p::churn::ProfileSet profiles = p2p::churn::ProfileSet::Paper();
  p2p::util::Table t({"threshold", "repairs/1000/day (all)", "newcomer repairs",
                      "losses/1000/day (newcomers)", "total losses"});
  for (int threshold : {132, 140, 148, 156, 164}) {
    p2p::sim::EngineOptions eopts;
    eopts.seed = static_cast<uint64_t>(seed);
    eopts.end_round = days * p2p::sim::kRoundsPerDay;
    p2p::sim::Engine engine(eopts);
    p2p::backup::SystemOptions opts;
    opts.num_peers = static_cast<uint32_t>(peers);
    opts.repair_threshold = threshold;
    p2p::backup::BackupNetwork network(&engine, &profiles, opts);
    engine.Run();

    const auto& acc = network.accounting();
    double all_rate = 0;
    for (int c = 0; c < p2p::metrics::kCategoryCount; ++c) {
      all_rate +=
          acc.RepairsPer1000PerDay(static_cast<p2p::metrics::AgeCategory>(c)) *
          acc.MeanPopulation(static_cast<p2p::metrics::AgeCategory>(c));
    }
    all_rate /= static_cast<double>(peers);
    t.BeginRow();
    t.Add(threshold);
    t.Add(all_rate, 3);
    t.Add(acc.RepairsPer1000PerDay(p2p::metrics::AgeCategory::kNewcomer), 3);
    t.Add(acc.LossesPer1000PerDay(p2p::metrics::AgeCategory::kNewcomer), 4);
    t.Add(network.totals().losses);
  }
  t.RenderPretty(std::cout);
  std::printf(
      "\nreading: repairs rise with the threshold while losses fall; the\n"
      "paper picks 148 as the smallest threshold with an acceptable loss "
      "rate.\n");
  return 0;
}
