// Scenario registry / file tool: list the built-ins, render a scenario in
// the canonical text form, validate a file, or run one end to end.
//
//   ./scenario_tool list                       # registry names, one per line
//   ./scenario_tool show flash-crowd           # canonical key=value text
//   ./scenario_tool show flash-crowd > my.scenario   # ... then edit and:
//   ./scenario_tool run my.scenario --peers=500 --rounds=200 --check
//
// `run` validates first, simulates, and prints a one-screen summary; with
// --check it also verifies the full partnership/quota invariant set during
// and after the run (the CI smoke loop in scripts/check.sh runs every
// registered scenario this way and fails on any Validate() or invariant
// error).

#include <cstdio>
#include <iostream>

#include "scenario/registry.h"
#include "scenario/scenario.h"
#include "scenario/text.h"
#include "util/flags.h"
#include "util/table.h"

namespace {

int Usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s list\n"
               "       %s show <name|file>\n"
               "       %s run <name|file> [--peers=N] [--rounds=R] [--seed=S] "
               "[--check]\n",
               prog, prog, prog);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace p2p;

  int64_t peers = 0;
  int64_t rounds = 0;
  int64_t seed = -1;
  bool check = false;

  util::FlagSet flags;
  flags.Int64("peers", &peers, "population size (0 = scenario value)");
  flags.Int64("rounds", &rounds, "rounds to simulate (0 = scenario value)");
  flags.Int64("seed", &seed, "random seed (-1 = scenario value)");
  flags.Bool("check", &check, "verify simulation invariants during the run");
  if (auto st = flags.Parse(argc, argv); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return Usage(argv[0]);
  }
  const auto& args = flags.positional();
  if (args.empty()) return Usage(argv[0]);
  const std::string& command = args[0];

  if (command == "list") {
    if (args.size() != 1) return Usage(argv[0]);
    for (const std::string& name : scenario::RegistryNames()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }

  if (args.size() != 2) return Usage(argv[0]);
  auto loaded = scenario::LoadScenario(args[1]);
  if (!loaded.ok()) {
    std::cerr << loaded.status().ToString() << "\n";
    return 1;
  }
  scenario::Scenario s = std::move(*loaded);

  if (command == "show") {
    std::fputs(scenario::RenderScenarioText(s).c_str(), stdout);
    return 0;
  }
  if (command != "run") return Usage(argv[0]);

  if (peers > 0) s.peers = static_cast<uint32_t>(peers);
  if (rounds > 0) s.rounds = rounds;
  if (seed >= 0) s.seed = static_cast<uint64_t>(seed);
  if (auto st = s.Validate(); !st.ok()) {
    std::cerr << "scenario '" << s.name << "': " << st.ToString() << "\n";
    return 1;
  }

  scenario::RunOptions run;
  run.check_invariants = check;
  const scenario::Outcome out = scenario::RunScenario(s, run);

  std::printf("# scenario %s: %u peers, %lld rounds, seed %llu%s\n",
              s.name.c_str(), s.peers, static_cast<long long>(s.rounds),
              static_cast<unsigned long long>(s.seed),
              check ? " (invariants verified)" : "");
  util::Table t({"metric", "value"});
  auto row = [&t](const char* name, int64_t value) {
    t.BeginRow();
    t.Add(name);
    t.Add(value);
  };
  row("repairs", out.totals.repairs);
  row("losses", out.totals.losses);
  row("blocks uploaded", out.totals.blocks_uploaded);
  row("departures", out.totals.departures);
  row("timeout-severed partnerships", out.totals.timeouts);
  row("final population", out.final_population);
  row("backed up", out.population.backed_up);
  t.RenderPretty(std::cout);
  std::printf("run took %.1fs\n", out.wall_seconds);
  return 0;
}
