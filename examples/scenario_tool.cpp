// Scenario registry / file tool: list the built-ins, render a scenario in
// the canonical text form, validate a file, or run one end to end.
//
//   ./scenario_tool list                       # registry names, one per line
//   ./scenario_tool policies                   # registered maintenance policies
//   ./scenario_tool selections                 # registered selection strategies
//   ./scenario_tool estimators                 # registered lifetime estimators
//   ./scenario_tool metrics                    # registered result probes
//   ./scenario_tool show flash-crowd           # canonical key=value text
//   ./scenario_tool show flash-crowd > my.scenario   # ... then edit and:
//   ./scenario_tool run my.scenario --peers=500 --rounds=200 --check
//   ./scenario_tool run paper --policy='proactive{batch_blocks=4}' --check
//   ./scenario_tool run paper --estimator='availability-weighted' --check
//
// `policies` / `selections` / `estimators` list every registered strategy
// with its parameters, defaults, and valid ranges (--names for just the
// names, one per line - what scripts/check.sh iterates); `metrics` lists
// every registered probe of the results pipeline (name, unit, shape,
// aggregation - the vocabulary of `metrics.select` in scenario files and
// `sweep_demo --metrics`). `run` validates first,
// simulates, and prints a one-screen summary; with --check it also verifies
// the full partnership/quota invariant set during and after the run (the CI
// smoke loop in scripts/check.sh runs every registered scenario AND every
// registered strategy this way and fails on any Validate() or invariant
// error).

#include <cstdio>
#include <iostream>
#include <memory>

#include "core/strategy_registry.h"
#include "metrics/categories.h"
#include "metrics/registry.h"
#include "scenario/registry.h"
#include "scenario/scenario.h"
#include "scenario/text.h"
#include "trace/sinks.h"
#include "trace/trace.h"
#include "util/flags.h"
#include "util/table.h"

namespace {

int Usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s list\n"
               "       %s policies [--names]\n"
               "       %s selections [--names]\n"
               "       %s estimators [--names]\n"
               "       %s metrics [--names]\n"
               "       %s show <name|file>\n"
               "       %s run <name|file> [--peers=N] [--rounds=R] [--seed=S] "
               "[--policy=SPEC] [--selection=SPEC] [--estimator=SPEC] "
               "[--transfer=LINK] [--check] [--brief] [--trace=FILE]\n",
               prog, prog, prog, prog, prog, prog, prog);
  return 1;
}

// One table row per (strategy, parameter); parameterless strategies get a
// single row. Shared by `policies` and `selections`.
struct ParamRowSink {
  p2p::util::Table table{{"strategy", "parameter", "type", "default", "range",
                          "description"}};

  void Add(const std::string& strategy, const std::string& summary,
           const std::vector<p2p::core::ParamInfo>& params) {
    using p2p::core::ParamValue;
    table.BeginRow();
    table.Add(strategy);
    table.Add("-");
    table.Add("-");
    table.Add("-");
    table.Add("-");
    table.Add(summary);
    for (const p2p::core::ParamInfo& info : params) {
      table.BeginRow();
      table.Add("");
      table.Add(info.name);
      table.Add(p2p::core::ParamTypeName(info.type));
      table.Add(info.contextual_default.empty()
                    ? info.def.Render()
                    : "(" + info.contextual_default + ")");
      table.Add("[" + ParamValue::Double(info.min_value).Render() + ", " +
                ParamValue::Double(info.max_value).Render() + "]");
      table.Add(info.help);
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace p2p;

  int64_t peers = 0;
  int64_t rounds = 0;
  int64_t seed = -1;
  bool check = false;
  bool names_only = false;
  bool brief = false;
  std::string policy_spec;
  std::string selection_spec;
  std::string estimator_spec;
  std::string transfer_link;
  std::string trace_path;

  util::FlagSet flags;
  flags.Int64("peers", &peers, "population size (0 = scenario value)");
  flags.Int64("rounds", &rounds, "rounds to simulate (0 = scenario value)");
  flags.Int64("seed", &seed, "random seed (-1 = scenario value)");
  flags.Bool("check", &check, "verify simulation invariants during the run");
  flags.Bool("names", &names_only,
             "policies/selections/estimators/metrics: print registered "
             "names only");
  flags.String("policy", &policy_spec,
               "run: override the maintenance policy (spec string)");
  flags.String("selection", &selection_spec,
               "run: override the selection strategy (spec string)");
  flags.String("estimator", &estimator_spec,
               "run: override the lifetime estimator (spec string)");
  flags.String("transfer", &transfer_link,
               "run: enable the bandwidth-constrained transfer scheduler on "
               "the named link profile (dsl-2009, dsl-modern, ftth)");
  flags.Bool("brief", &brief,
             "run: print a one-line summary instead of the metric table");
  flags.String("trace", &trace_path,
               "run: record host-runtime phase timings; writes Chrome "
               "trace_event JSON (.json, for about:tracing / Perfetto) or "
               "JSONL spans (.jsonl) and prints the phase summary to stderr");
  if (auto st = flags.Parse(argc, argv); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return Usage(argv[0]);
  }
  const auto& args = flags.positional();
  if (args.empty()) return Usage(argv[0]);
  const std::string& command = args[0];

  if (command == "list") {
    if (args.size() != 1) return Usage(argv[0]);
    for (const std::string& name : scenario::RegistryNames()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }

  if (command == "policies") {
    if (args.size() != 1) return Usage(argv[0]);
    ParamRowSink sink;
    for (const core::PolicyDescriptor* d : core::ListPolicies()) {
      if (names_only) {
        std::printf("%s\n", d->name.c_str());
      } else {
        sink.Add(d->name, d->summary, d->params);
      }
    }
    if (!names_only) sink.table.RenderPretty(std::cout);
    return 0;
  }

  if (command == "selections") {
    if (args.size() != 1) return Usage(argv[0]);
    ParamRowSink sink;
    for (const core::SelectionDescriptor* d : core::ListSelections()) {
      if (names_only) {
        std::printf("%s\n", d->name.c_str());
      } else {
        sink.Add(d->name, d->summary, d->params);
      }
    }
    if (!names_only) sink.table.RenderPretty(std::cout);
    return 0;
  }

  if (command == "estimators") {
    if (args.size() != 1) return Usage(argv[0]);
    ParamRowSink sink;
    for (const core::EstimatorDescriptor* d : core::ListEstimators()) {
      if (names_only) {
        std::printf("%s\n", d->name.c_str());
      } else {
        sink.Add(d->name, d->summary, d->params);
      }
    }
    if (!names_only) sink.table.RenderPretty(std::cout);
    return 0;
  }

  if (command == "metrics") {
    if (args.size() != 1) return Usage(argv[0]);
    util::Table table(
        {"metric", "unit", "shape", "kind", "aggregation", "default",
         "description"});
    for (const metrics::MetricDescriptor* d : metrics::ListMetrics()) {
      if (names_only) {
        std::printf("%s\n", d->name.c_str());
        continue;
      }
      table.BeginRow();
      table.Add(d->name);
      table.Add(d->unit);
      table.Add(d->per_category ? "per-category" : "scalar");
      table.Add(d->kind == metrics::MetricKind::kCount ? "count" : "real");
      table.Add(d->aggregation == metrics::MetricAggregation::kMoments
                    ? "moments"
                    : "none");
      table.Add(d->default_selected ? "yes" : "no");
      table.Add(d->help);
    }
    if (!names_only) table.RenderPretty(std::cout);
    return 0;
  }

  if (args.size() != 2) return Usage(argv[0]);
  auto loaded = scenario::LoadScenario(args[1]);
  if (!loaded.ok()) {
    std::cerr << loaded.status().ToString() << "\n";
    return 1;
  }
  scenario::Scenario s = std::move(*loaded);

  if (command == "show") {
    std::fputs(scenario::RenderScenarioText(s).c_str(), stdout);
    return 0;
  }
  if (command != "run") return Usage(argv[0]);

  if (peers > 0) s.peers = static_cast<uint32_t>(peers);
  if (rounds > 0) s.rounds = rounds;
  if (seed >= 0) s.seed = static_cast<uint64_t>(seed);
  if (!policy_spec.empty()) {
    auto parsed = core::PolicySpec::Parse(policy_spec);
    if (!parsed.ok()) {
      std::cerr << "--policy: " << parsed.status().ToString() << "\n";
      return 1;
    }
    s.options.policy = *parsed;
  }
  if (!selection_spec.empty()) {
    auto parsed = core::SelectionSpec::Parse(selection_spec);
    if (!parsed.ok()) {
      std::cerr << "--selection: " << parsed.status().ToString() << "\n";
      return 1;
    }
    s.options.selection = *parsed;
  }
  if (!estimator_spec.empty()) {
    auto parsed = core::EstimatorSpec::Parse(estimator_spec);
    if (!parsed.ok()) {
      std::cerr << "--estimator: " << parsed.status().ToString() << "\n";
      return 1;
    }
    s.options.estimator = *parsed;
  }
  if (!transfer_link.empty()) {
    s.options.transfer_enabled = true;
    s.options.transfer_link = transfer_link;
  }
  if (auto st = s.Validate(); !st.ok()) {
    std::cerr << "scenario '" << s.name << "': " << st.ToString() << "\n";
    return 1;
  }

  scenario::RunOptions run;
  run.check_invariants = check;
  std::unique_ptr<trace::TraceSession> session;
  if (!trace_path.empty()) {
    session = std::make_unique<trace::TraceSession>();
    session->Install();
  }
  const scenario::Outcome out = scenario::RunScenario(s, run);
  if (session != nullptr) {
    trace::TraceSession::Uninstall();
    trace::WriteSummary(*session, std::cerr);
    if (auto st = trace::WriteTraceFile(*session, trace_path); !st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
    std::fprintf(stderr, "# trace written to %s\n", trace_path.c_str());
  }

  if (brief) {
    const metrics::MetricValue* repairs = out.report.Find("repairs");
    const metrics::MetricValue* losses = out.report.Find("losses");
    std::printf(
        "ok scenario=%s peers=%u rounds=%lld seed=%llu wall_ms=%.0f "
        "repairs=%lld losses=%lld final_population=%lld\n",
        s.name.c_str(), s.peers, static_cast<long long>(s.rounds),
        static_cast<unsigned long long>(s.seed), out.wall_seconds * 1000.0,
        repairs != nullptr ? static_cast<long long>(repairs->scalar) : -1,
        losses != nullptr ? static_cast<long long>(losses->scalar) : -1,
        static_cast<long long>(out.final_population));
    return 0;
  }

  std::printf("# scenario %s: %u peers, %lld rounds, seed %llu%s\n",
              s.name.c_str(), s.peers, static_cast<long long>(s.rounds),
              static_cast<unsigned long long>(s.seed),
              check ? " (invariants verified)" : "");
  // The scenario's metric selection drives the summary: one row per selected
  // scalar, four per per-category probe (the default set prints the five
  // totals plus both per-category rate blocks); a metrics.select line in the
  // file reshapes it without touching this tool.
  auto selection = metrics::ResolveCollectedSelection(s.metrics);
  util::Table t({"metric", "value"});
  auto row = [&t](const std::string& name, const std::string& value) {
    t.BeginRow();
    t.Add(name);
    t.Add(value);
  };
  bool selection_has_final_population = false;
  for (const metrics::MetricDescriptor* d : *selection) {
    if (d->name == "final_population") selection_has_final_population = true;
    const metrics::MetricValue* v = out.report.Find(d->name);
    if (v == nullptr) continue;
    auto render = [&](double x) {
      if (d->kind == metrics::MetricKind::kCount) {
        return std::to_string(static_cast<int64_t>(x));
      }
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.3f", x);
      return std::string(buf);
    };
    if (d->per_category) {
      for (int c = 0; c < metrics::kCategoryCount; ++c) {
        row(d->name + "." +
                metrics::CategoryToken(static_cast<metrics::AgeCategory>(c)),
            render(v->per_category[static_cast<size_t>(c)]));
      }
    } else {
      row(d->name, render(v->scalar));
    }
  }
  if (!selection_has_final_population) {
    row("final population", std::to_string(out.final_population));
  }
  row("backed up", std::to_string(out.population.backed_up));
  t.RenderPretty(std::cout);
  std::printf("run took %.1fs\n", out.wall_seconds);
  return 0;
}
