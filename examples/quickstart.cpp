// Quickstart: simulate a small peer-to-peer backup network for one year and
// print the maintenance costs per age category - a 60-second tour of the
// library's public API.
//
//   ./examples/quickstart [--peers=2000] [--rounds=8760] [--threshold=148]

#include <cstdio>
#include <iostream>

#include "backup/network.h"
#include "backup/options.h"
#include "churn/profile.h"
#include "metrics/categories.h"
#include "sim/engine.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  int64_t peers = 2000;
  int64_t rounds = 8760;  // one year of hourly rounds
  int threshold = 148;
  int64_t seed = 42;
  bool diurnal = false;

  p2p::util::FlagSet flags;
  flags.Int64("peers", &peers, "population size");
  flags.Int64("rounds", &rounds, "rounds to simulate (1 round = 1 hour)");
  flags.Int32("threshold", &threshold, "repair threshold k'");
  flags.Int64("seed", &seed, "random seed");
  flags.Bool("diurnal", &diurnal,
             "use diurnal availability sessions instead of per-round coins");
  bool timeout_mode = false;
  int64_t partner_timeout = 24;
  flags.Bool("timeout-mode", &timeout_mode,
             "write blocks off after a partner timeout instead of counting "
             "online partners");
  flags.Int64("partner-timeout", &partner_timeout,
              "rounds unreachable before write-off (timeout mode)");
  if (auto st = flags.Parse(argc, argv); !st.ok()) {
    std::cerr << st.ToString() << "\n" << flags.Usage(argv[0]);
    return 1;
  }

  // 1. A deterministic round-based engine (1 round = 1 hour).
  p2p::sim::EngineOptions eopts;
  eopts.seed = static_cast<uint64_t>(seed);
  eopts.end_round = rounds;
  p2p::sim::Engine engine(eopts);

  // 2. The paper's four behaviour profiles (Durable/Stable/Unstable/Erratic).
  const p2p::churn::ProfileSet profiles =
      diurnal ? p2p::churn::ProfileSet::Paper()
              : p2p::churn::ProfileSet::PaperBernoulli();

  // 3. The backup network: erasure-coded archives (k=128, m=128), age-aware
  //    partner selection, fixed repair threshold.
  p2p::backup::SystemOptions opts;
  opts.num_peers = static_cast<uint32_t>(peers);
  opts.repair_threshold = threshold;
  opts.visibility = timeout_mode
                        ? p2p::backup::VisibilityModel::kTimeoutPresumed
                        : p2p::backup::VisibilityModel::kInstantOnline;
  opts.partner_timeout = partner_timeout;
  p2p::backup::BackupNetwork network(&engine, &profiles, opts);

  // 4. Run.
  engine.Run();

  // 5. Report.
  std::printf("simulated %lld rounds (%.0f days) with %lld peers, k'=%d\n\n",
              static_cast<long long>(rounds), p2p::sim::RoundsToDays(rounds),
              static_cast<long long>(peers), threshold);

  p2p::util::Table table({"category", "mean population", "repairs", "losses",
                          "repairs/1000/day", "losses/1000/day"});
  const auto& acc = network.accounting();
  for (int c = 0; c < p2p::metrics::kCategoryCount; ++c) {
    const auto cat = static_cast<p2p::metrics::AgeCategory>(c);
    const auto snap = acc.Snapshot(cat);
    table.BeginRow();
    table.Add(p2p::metrics::CategoryName(cat));
    table.Add(acc.MeanPopulation(cat), 1);
    table.Add(snap.repairs);
    table.Add(snap.losses);
    table.Add(acc.RepairsPer1000PerDay(cat), 3);
    table.Add(acc.LossesPer1000PerDay(cat), 3);
  }
  table.RenderPretty(std::cout);

  const auto pop = network.ComputePopulationStats();
  std::printf(
      "\npopulation: %.1f partners/peer (%.1f visible), %.1f/%d quota used, "
      "%.0f%% online, %lld backed up\n",
      pop.mean_partners, pop.mean_visible, pop.mean_hosted, opts.quota_blocks,
      100.0 * pop.online_fraction, static_cast<long long>(pop.backed_up));

  const auto& totals = network.totals();
  std::printf(
      "\ntotals: %lld repairs, %lld losses, %lld blocks uploaded, "
      "%lld departures, %lld timeout-severed partnerships\n",
      static_cast<long long>(totals.repairs),
      static_cast<long long>(totals.losses),
      static_cast<long long>(totals.blocks_uploaded),
      static_cast<long long>(totals.departures),
      static_cast<long long>(totals.timeouts));
  return 0;
}
