// Quickstart: simulate a small peer-to-peer backup network for one year and
// print the maintenance costs per age category - a 60-second tour of the
// library's public API.
//
//   ./examples/quickstart [--peers=2000] [--rounds=8760] [--threshold=148]
//                         [--scenario=<name|file>]
//
// The simulated world is a scenario (default: the "bernoulli" registry
// entry); `./scenario_tool list` shows the other built-ins.

#include <cstdio>
#include <iostream>

#include "metrics/categories.h"
#include "scenario/registry.h"
#include "scenario/scenario.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace p2p;

  // 1. A scenario: world (population + workload) plus scale and options.
  scenario::Scenario s;
  s.peers = 2000;
  s.rounds = 8760;  // one year of hourly rounds
  s.options.visibility = backup::VisibilityModel::kInstantOnline;
  if (auto world = scenario::FindScenario("bernoulli"); world.ok()) {
    scenario::ApplyWorld(*world, &s);
  }

  int threshold = 0;
  bool timeout_mode = false;
  int64_t partner_timeout = 24;

  util::FlagSet flags;
  scenario::ScenarioFlags scale;
  scale.Register(&flags);
  flags.Int32("threshold", &threshold,
              "repair threshold k' (0 = keep scenario value)");
  flags.Bool("timeout-mode", &timeout_mode,
             "write blocks off after a partner timeout instead of counting "
             "online partners");
  flags.Int64("partner-timeout", &partner_timeout,
              "rounds unreachable before write-off (timeout mode)");
  if (auto st = flags.Parse(argc, argv); !st.ok()) {
    std::cerr << st.ToString() << "\n" << flags.Usage(argv[0]);
    return 1;
  }
  if (auto st = scale.Apply(&s); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  if (threshold > 0) s.options.repair_threshold = threshold;
  if (timeout_mode) {
    s.options.visibility = backup::VisibilityModel::kTimeoutPresumed;
    s.options.partner_timeout = partner_timeout;
  }
  if (auto st = s.Validate(); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }

  // 2. Run (a private deterministic engine + network under the hood).
  const scenario::Outcome out = scenario::RunScenario(s);

  // 3. Report.
  std::printf(
      "simulated %lld rounds (%.0f days) of '%s' with %u peers, k'=%d\n\n",
      static_cast<long long>(s.rounds), sim::RoundsToDays(s.rounds),
      s.name.c_str(), s.peers, s.options.repair_threshold);

  // Every number below is a registered probe of the run's RunReport; see
  // `scenario_tool metrics` for the full vocabulary.
  util::Table table({"category", "mean population", "repairs", "losses",
                     "repairs/1000/day", "losses/1000/day"});
  for (int c = 0; c < metrics::kCategoryCount; ++c) {
    const auto cat = static_cast<metrics::AgeCategory>(c);
    const size_t i = static_cast<size_t>(c);
    table.BeginRow();
    table.Add(metrics::CategoryName(cat));
    table.Add(out.report.PerCategory("mean_population")[i], 1);
    table.Add(static_cast<int64_t>(out.report.PerCategory("cum_repairs")[i]));
    table.Add(static_cast<int64_t>(out.report.PerCategory("cum_losses")[i]));
    table.Add(out.report.PerCategory("repairs_1k_day")[i], 3);
    table.Add(out.report.PerCategory("losses_1k_day")[i], 3);
  }
  table.RenderPretty(std::cout);

  const auto& pop = out.population;
  std::printf(
      "\npopulation: %.1f partners/peer (%.1f visible), %.1f/%d quota used, "
      "%.0f%% online, %lld backed up, %lld live at the end\n",
      pop.mean_partners, pop.mean_visible, pop.mean_hosted,
      s.options.quota_blocks, 100.0 * pop.online_fraction,
      static_cast<long long>(pop.backed_up),
      static_cast<long long>(out.final_population));

  std::printf(
      "\ntotals: %lld repairs, %lld losses, %lld blocks uploaded, "
      "%lld departures, %lld timeout-severed partnerships\n",
      static_cast<long long>(out.report.Count("repairs")),
      static_cast<long long>(out.report.Count("losses")),
      static_cast<long long>(out.report.Count("blocks_uploaded")),
      static_cast<long long>(out.report.Count("departures")),
      static_cast<long long>(out.report.Count("timeouts")));
  std::printf(
      "maintenance: %.1f blocks/day uploaded, mean time-to-repair %.1f "
      "rounds (p99 %.0f)\n",
      out.report.Scalar("repair_bandwidth"),
      out.report.Scalar("time_to_repair_mean"),
      out.report.Scalar("time_to_repair_p99"));
  return 0;
}
