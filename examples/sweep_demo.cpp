// Drive a multi-axis scenario sweep (repair threshold x host quota x named
// scenario x policy spec x selection spec) through the parallel runner and
// print a report.
//
//   ./sweep_demo --thresholds=132,148,164 --quotas=256,384
//                --scenarios=paper,flash-crowd
//                --policies='fixed-threshold,proactive{batch_blocks=8}'
//                --selections='oldest-first,weighted-random{age_exponent=2}'
//                --estimators='age-rank,availability-weighted{exponent=2}'
//                --metrics=repairs,losses,repair_bandwidth,time_to_repair_mean
//                --replicates=3 --threads=4 --format=pretty
//
// Formats: pretty (per-cell + aggregate tables), csv (per-cell rows),
// aggregate (per-group mean/stddev CSV), json (both in one document).
// --metrics selects which registered probes become report columns
// (`scenario_tool metrics` lists them; empty = the default set). Output on
// stdout is byte-identical for any --threads value.

#include <cstdio>
#include <iostream>
#include <memory>

#include "scenario/parse.h"
#include "scenario/registry.h"
#include "sweep/report.h"
#include "sweep/runner.h"
#include "sweep/spec.h"
#include "trace/sinks.h"
#include "trace/trace.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace p2p;

  sweep::SweepSpec spec;
  std::string thresholds = "132,148,164";
  std::string quotas = "";
  std::string scenarios = "";
  std::string policies = "";
  std::string selections = "";
  std::string estimators = "";
  std::string links = "";
  std::string metrics = "";
  int64_t replicates = 1;
  int threads = 0;
  std::string format = "pretty";
  std::string trace_path;

  util::FlagSet flags;
  scenario::ScenarioFlags scale;
  scale.Register(&flags);
  flags.String("thresholds", &thresholds,
               "comma-separated repair thresholds (axis 1)");
  flags.String("quotas", &quotas,
               "comma-separated host quotas (axis 2; empty = keep default)");
  flags.String("scenarios", &scenarios,
               "comma-separated scenario names/files (axis 3; empty = base "
               "world only)");
  flags.String("policies", &policies,
               "comma-separated policy specs, e.g. "
               "'fixed-threshold{threshold=140},adaptive-redundancy' (empty "
               "= base policy)");
  flags.String("selections", &selections,
               "comma-separated selection specs, e.g. "
               "'oldest-first,weighted-random{age_exponent=2}' (empty = base "
               "selection)");
  flags.String("estimators", &estimators,
               "comma-separated estimator specs, e.g. "
               "'age-rank,availability-weighted{exponent=2}' (empty = base "
               "estimator)");
  flags.String("links", &links,
               "comma-separated link-profile names (dsl-2009, dsl-modern, "
               "ftth); each cell runs with the transfer scheduler enabled on "
               "that link (empty = instant repairs)");
  flags.String("metrics", &metrics,
               "comma-separated metric names to report (see 'scenario_tool "
               "metrics'; empty = default set)");
  flags.Int64("replicates", &replicates, "seed replicates per grid point");
  flags.Int32("threads", &threads, "worker threads (0 = hardware)");
  flags.String("format", &format, "pretty | csv | aggregate | json");
  flags.String("trace", &trace_path,
               "record host-runtime phase timings across all worker threads; "
               "writes Chrome trace_event JSON (.json) or JSONL spans "
               "(.jsonl) and prints the phase summary to stderr");
  if (auto st = flags.Parse(argc, argv); !st.ok()) {
    std::cerr << st.ToString() << "\n" << flags.Usage(argv[0]);
    return 1;
  }
  if (auto st = scale.Apply(&spec.base); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }

  spec.replicates = static_cast<int>(replicates);
  if (auto st = scenario::ParseIntList(thresholds, &spec.repair_thresholds);
      !st.ok()) {
    std::cerr << "--thresholds: " << st.ToString() << "\n";
    return 1;
  }
  if (!quotas.empty()) {
    if (auto st = scenario::ParseIntList(quotas, &spec.quotas); !st.ok()) {
      std::cerr << "--quotas: " << st.ToString() << "\n";
      return 1;
    }
  }
  if (!scenarios.empty()) {
    if (auto st = scenario::ParseStringList(scenarios, &spec.scenarios);
        !st.ok()) {
      std::cerr << "--scenarios: " << st.ToString() << "\n";
      return 1;
    }
  }
  if (!policies.empty()) {
    if (auto st = scenario::ParseSpecList(policies, &spec.policies);
        !st.ok()) {
      std::cerr << "--policies: " << st.ToString() << "\n";
      return 1;
    }
  }
  if (!selections.empty()) {
    if (auto st = scenario::ParseSpecList(selections, &spec.selections);
        !st.ok()) {
      std::cerr << "--selections: " << st.ToString() << "\n";
      return 1;
    }
  }
  if (!estimators.empty()) {
    if (auto st = scenario::ParseSpecList(estimators, &spec.estimators);
        !st.ok()) {
      std::cerr << "--estimators: " << st.ToString() << "\n";
      return 1;
    }
  }
  if (!links.empty()) {
    if (auto st = scenario::ParseStringList(links, &spec.links); !st.ok()) {
      std::cerr << "--links: " << st.ToString() << "\n";
      return 1;
    }
  }
  if (!metrics.empty()) {
    if (auto st = scenario::ParseStringList(metrics, &spec.metrics);
        !st.ok()) {
      std::cerr << "--metrics: " << st.ToString() << "\n";
      return 1;
    }
  }

  sweep::RunnerOptions ropts;
  ropts.threads = threads;
  ropts.progress = true;
  std::fprintf(stderr, "# sweep: %zu cells on %d threads\n", spec.CellCount(),
               sweep::ResolveThreads(threads));
  std::unique_ptr<trace::TraceSession> session;
  if (!trace_path.empty()) {
    session = std::make_unique<trace::TraceSession>();
    session->Install();
  }
  const auto results = sweep::RunSweep(spec, ropts);
  if (session != nullptr) {
    trace::TraceSession::Uninstall();
    trace::WriteSummary(*session, std::cerr);
    if (auto st = trace::WriteTraceFile(*session, trace_path); !st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
    std::fprintf(stderr, "# trace written to %s\n", trace_path.c_str());
  }
  if (!results.ok()) {
    std::cerr << results.status().ToString() << "\n";
    return 1;
  }

  const sweep::SweepReport report = sweep::SweepReport::Build(spec, *results);
  if (format == "csv") {
    report.WriteCellsCsv(std::cout);
  } else if (format == "aggregate") {
    report.WriteAggregateCsv(std::cout);
  } else if (format == "json") {
    report.WriteJson(std::cout);
  } else {
    report.CellTable().RenderPretty(std::cout);
    if (spec.replicates > 1) {
      std::printf("\n");
      report.AggregateTable().RenderPretty(std::cout);
    }
  }
  return 0;
}
