// Drive a two-axis scenario sweep (repair threshold x host quota) through
// the parallel runner and print a report.
//
//   ./sweep_demo --thresholds=132,148,164 --quotas=256,384
//                --replicates=3 --threads=4 --format=pretty
//
// Formats: pretty (per-cell + aggregate tables), csv (per-cell rows),
// aggregate (per-group mean/stddev CSV), json (both in one document).
// Output on stdout is byte-identical for any --threads value.

#include <cstdio>
#include <iostream>

#include "sweep/report.h"
#include "sweep/runner.h"
#include "sweep/spec.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace p2p;

  sweep::Scenario base;
  base.peers = 1500;
  base.rounds = 18'000;
  std::string thresholds = "132,148,164";
  std::string quotas = "";
  int64_t peers = 0;
  int64_t rounds = 0;
  int64_t seed = -1;
  int64_t replicates = 1;
  int threads = 0;
  std::string format = "pretty";

  util::FlagSet flags;
  flags.String("thresholds", &thresholds,
               "comma-separated repair thresholds (axis 1)");
  flags.String("quotas", &quotas,
               "comma-separated host quotas (axis 2; empty = keep default)");
  flags.Int64("peers", &peers, "population size (0 = default 1500)");
  flags.Int64("rounds", &rounds, "rounds to simulate (0 = default 18000)");
  flags.Int64("seed", &seed, "master seed (-1 = default 42)");
  flags.Int64("replicates", &replicates, "seed replicates per grid point");
  flags.Int32("threads", &threads, "worker threads (0 = hardware)");
  flags.String("format", &format, "pretty | csv | aggregate | json");
  if (auto st = flags.Parse(argc, argv); !st.ok()) {
    std::cerr << st.ToString() << "\n" << flags.Usage(argv[0]);
    return 1;
  }
  if (peers > 0) base.peers = static_cast<uint32_t>(peers);
  if (rounds > 0) base.rounds = rounds;
  if (seed >= 0) base.seed = static_cast<uint64_t>(seed);

  sweep::SweepSpec spec;
  spec.base = base;
  spec.replicates = static_cast<int>(replicates);
  if (auto st = sweep::ParseIntList(thresholds, &spec.repair_thresholds);
      !st.ok()) {
    std::cerr << "--thresholds: " << st.ToString() << "\n";
    return 1;
  }
  if (!quotas.empty()) {
    if (auto st = sweep::ParseIntList(quotas, &spec.quotas); !st.ok()) {
      std::cerr << "--quotas: " << st.ToString() << "\n";
      return 1;
    }
  }

  sweep::RunnerOptions ropts;
  ropts.threads = threads;
  ropts.progress = true;
  std::fprintf(stderr, "# sweep: %zu cells on %d threads\n", spec.CellCount(),
               sweep::ResolveThreads(threads));
  const auto results = sweep::RunSweep(spec, ropts);
  if (!results.ok()) {
    std::cerr << results.status().ToString() << "\n";
    return 1;
  }

  const sweep::SweepReport report = sweep::SweepReport::Build(spec, *results);
  if (format == "csv") {
    report.WriteCellsCsv(std::cout);
  } else if (format == "aggregate") {
    report.WriteAggregateCsv(std::cout);
  } else if (format == "json") {
    report.WriteJson(std::cout);
  } else {
    report.CellTable().RenderPretty(std::cout);
    if (spec.replicates > 1) {
      std::printf("\n");
      report.AggregateTable().RenderPretty(std::cout);
    }
  }
  return 0;
}
