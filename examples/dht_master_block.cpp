// Master-block publication over the DHT (paper 2.2.1-2.2.2): "The master
// block is then uploaded to the network, for example ... to a DHT"; a
// restoring peer that lost everything finds it again with one lookup.
//
// Builds a 500-node Kademlia network, publishes sealed master blocks for a
// handful of users, crashes a third of the network, and restores.

#include <cstdio>

#include "archive/master_block.h"
#include "dht/kademlia.h"
#include "util/rng.h"

using namespace p2p;

int main() {
  util::Rng rng(7);
  dht::KademliaNetwork net;
  std::vector<dht::NodeId> nodes;
  for (int i = 0; i < 500; ++i) nodes.push_back(net.JoinRandom(&rng));
  std::printf("DHT bootstrapped: %zu nodes\n", net.size());

  // Publish master blocks for 20 users.
  for (uint32_t user = 0; user < 20; ++user) {
    archive::MasterBlock mb;
    mb.owner_id = user;
    mb.sequence = 1;
    archive::ArchiveRecord rec;
    rec.archive_id = 0;
    rec.k = 128;
    rec.m = 128;
    rec.archive_size = 128ull << 20;
    for (uint32_t b = 0; b < 256; ++b) rec.block_hosts.push_back(b);
    mb.archives.push_back(rec);
    const auto sealed = mb.Seal("pw-" + std::to_string(user));
    const auto origin = nodes[static_cast<size_t>(user) % nodes.size()];
    if (!net.Put(origin, dht::MasterBlockKey(user), sealed).ok()) {
      std::printf("publish failed for user %u\n", user);
      return 1;
    }
  }
  const auto stats_after_put = net.stats();
  std::printf("published 20 master blocks (%lld STORE RPCs, %.1f RPCs/lookup)\n",
              static_cast<long long>(stats_after_put.store_rpcs),
              static_cast<double>(stats_after_put.lookup_rpc_total) /
                  static_cast<double>(stats_after_put.lookups));

  // A third of the network crashes.
  int crashed = 0;
  for (size_t i = 0; i < nodes.size(); i += 3) {
    if (net.Crash(nodes[i]).ok()) ++crashed;
  }
  std::printf("crashed %d nodes, %zu remain\n", crashed, net.size());

  // Every user restores from a surviving node.
  int restored = 0;
  for (uint32_t user = 0; user < 20; ++user) {
    dht::NodeId reader{};
    for (size_t i = 1; i < nodes.size(); ++i) {
      if (net.Contains(nodes[i])) {
        reader = nodes[i];
        break;
      }
    }
    auto fetched = net.Get(reader, dht::MasterBlockKey(user));
    if (!fetched.ok()) continue;
    auto mb = archive::MasterBlock::Open(*fetched, "pw-" + std::to_string(user));
    if (mb.ok() && mb->owner_id == user &&
        mb->archives.size() == 1 && mb->archives[0].block_hosts.size() == 256) {
      ++restored;
    }
  }
  std::printf("restored %d/20 master blocks after the crash wave\n", restored);
  return restored == 20 ? 0 : 1;
}
