// Observer study (paper figure 3): five measurement peers with frozen ages
// (1 hour, 1 day, 1 week, 1 month, 3 months) run the repair protocol inside
// a churning network; their cumulative repair counts show how strongly the
// age criterion stratifies maintenance cost.
//
//   ./examples/observer_study [--peers=2000] [--days=500] [--threshold=148]
//                             [--scenario=<name|file>]
//
// This example constructs the network directly (rather than through
// scenario::RunScenario) because it inspects live per-observer partner
// sets at the end of the run; the world itself still comes from a scenario.

#include <cstdio>
#include <iostream>

#include "backup/network.h"
#include "scenario/registry.h"
#include "scenario/scenario.h"
#include "sim/engine.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace p2p;

  scenario::Scenario s;
  s.peers = 2000;
  s.rounds = 500 * sim::kRoundsPerDay;

  int64_t days = 0;
  int threshold = 0;

  util::FlagSet flags;
  scenario::ScenarioFlags scale;
  scale.Register(&flags);
  flags.Int64("days", &days, "days to simulate (0 = keep --rounds/default)");
  flags.Int32("threshold", &threshold,
              "repair threshold k' (0 = keep scenario value)");
  if (auto st = flags.Parse(argc, argv); !st.ok()) {
    std::cerr << st.ToString() << "\n" << flags.Usage(argv[0]);
    return 1;
  }
  if (auto st = scale.Apply(&s); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  if (days > 0) s.rounds = days * sim::kRoundsPerDay;
  if (threshold > 0) s.options.repair_threshold = threshold;
  if (auto st = s.Validate(); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }

  sim::EngineOptions eopts;
  eopts.seed = s.seed;
  eopts.end_round = s.rounds;
  sim::Engine engine(eopts);

  const auto profiles = s.population.Compile();
  auto workload = scenario::CompileWorkload(s.workload, s.peers);
  backup::SystemOptions opts = s.options;
  opts.num_peers = s.peers;
  backup::BackupNetwork network(&engine, &*profiles, opts,
                                std::move(*workload));

  // The paper's observer ages (section 4.2.2).
  network.AddObserver("Baby (1 hour)", 1);
  network.AddObserver("Teenager (1 day)", sim::kRoundsPerDay);
  network.AddObserver("Adult (1 week)", sim::kRoundsPerWeek);
  network.AddObserver("Senior (1 month)", sim::kRoundsPerMonth);
  network.AddObserver("Elder (3 months)", 3 * sim::kRoundsPerMonth);

  engine.Run();

  std::printf("observers after %.0f days of '%s' (threshold %d, %u peers):\n\n",
              sim::RoundsToDays(s.rounds), s.name.c_str(),
              s.options.repair_threshold, s.peers);
  util::Table table({"observer", "frozen age (days)", "repairs", "losses",
                     "partner avail", "partner age (d)", "visible",
                     "partner profiles"});
  // Observer ids start above every normal slot (including slots reserved
  // for workload join waves).
  const auto first_observer =
      static_cast<backup::PeerId>(network.total_ids() -
                                  network.metrics().observers().size());
  for (size_t i = 0; i < network.metrics().observers().size(); ++i) {
    const auto& obs = network.metrics().observers()[i];
    const auto id = static_cast<backup::PeerId>(first_observer + i);
    const auto ps = network.ComputePartnerStats(id);
    table.BeginRow();
    table.Add(obs.name);
    table.Add(sim::RoundsToDays(obs.frozen_age), 2);
    table.Add(obs.repairs);
    table.Add(obs.losses);
    table.Add(ps.mean_nominal_availability, 3);
    table.Add(ps.mean_age_days, 1);
    table.Add(network.VisibleBlocks(id));
    std::string mix;
    for (size_t p = 0; p < s.population.profiles.size() &&
                       p < ps.profile_counts.size();
         ++p) {
      if (!mix.empty()) mix += '/';
      mix += std::to_string(ps.profile_counts[p]);
    }
    table.Add(mix);
  }
  table.RenderPretty(std::cout);

  std::printf("\ncumulative repairs over time (TSV):\n");
  std::printf("# day");
  for (const auto& obs : network.metrics().observers()) std::printf("\t%s", obs.name.c_str());
  std::printf("\n");
  const size_t samples = network.metrics().observers().front().cumulative_repairs.samples().size();
  const size_t step = samples > 20 ? samples / 20 : 1;
  for (size_t i = 0; i < samples; i += step) {
    std::printf("%.0f", sim::RoundsToDays(
                            network.metrics().observers()[0].cumulative_repairs.samples()[i].first));
    for (const auto& obs : network.metrics().observers()) {
      std::printf("\t%.0f", obs.cumulative_repairs.samples()[i].second);
    }
    std::printf("\n");
  }
  return 0;
}
