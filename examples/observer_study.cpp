// Observer study (paper figure 3): five measurement peers with frozen ages
// (1 hour, 1 day, 1 week, 1 month, 3 months) run the repair protocol inside
// a churning network; their cumulative repair counts show how strongly the
// age criterion stratifies maintenance cost.
//
//   ./examples/observer_study [--peers=2000] [--days=500] [--threshold=148]

#include <cstdio>
#include <iostream>

#include "backup/network.h"
#include "churn/profile.h"
#include "sim/engine.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  int64_t peers = 2000;
  int64_t days = 500;
  int threshold = 148;
  int64_t seed = 42;

  p2p::util::FlagSet flags;
  flags.Int64("peers", &peers, "population size");
  flags.Int64("days", &days, "days to simulate");
  flags.Int32("threshold", &threshold, "repair threshold k'");
  flags.Int64("seed", &seed, "random seed");
  if (auto st = flags.Parse(argc, argv); !st.ok()) {
    std::cerr << st.ToString() << "\n" << flags.Usage(argv[0]);
    return 1;
  }

  p2p::sim::EngineOptions eopts;
  eopts.seed = static_cast<uint64_t>(seed);
  eopts.end_round = days * p2p::sim::kRoundsPerDay;
  p2p::sim::Engine engine(eopts);

  const p2p::churn::ProfileSet profiles = p2p::churn::ProfileSet::Paper();
  p2p::backup::SystemOptions opts;
  opts.num_peers = static_cast<uint32_t>(peers);
  opts.repair_threshold = threshold;
  p2p::backup::BackupNetwork network(&engine, &profiles, opts);

  // The paper's observer ages (section 4.2.2).
  network.AddObserver("Baby (1 hour)", 1);
  network.AddObserver("Teenager (1 day)", p2p::sim::kRoundsPerDay);
  network.AddObserver("Adult (1 week)", p2p::sim::kRoundsPerWeek);
  network.AddObserver("Senior (1 month)", p2p::sim::kRoundsPerMonth);
  network.AddObserver("Elder (3 months)", 3 * p2p::sim::kRoundsPerMonth);

  engine.Run();

  std::printf("observers after %lld days (threshold %d, %lld peers):\n\n",
              static_cast<long long>(days), threshold,
              static_cast<long long>(peers));
  p2p::util::Table table({"observer", "frozen age (days)", "repairs", "losses",
                          "partner avail", "partner age (d)", "visible",
                          "dur/sta/uns/err"});
  for (size_t i = 0; i < network.observers().size(); ++i) {
    const auto& obs = network.observers()[i];
    const auto id = static_cast<p2p::backup::PeerId>(peers + i);
    const auto ps = network.ComputePartnerStats(id);
    table.BeginRow();
    table.Add(obs.name);
    table.Add(p2p::sim::RoundsToDays(obs.frozen_age), 2);
    table.Add(obs.repairs);
    table.Add(obs.losses);
    table.Add(ps.mean_nominal_availability, 3);
    table.Add(ps.mean_age_days, 1);
    table.Add(network.VisibleBlocks(id));
    char mix[64];
    std::snprintf(mix, sizeof(mix), "%d/%d/%d/%d", ps.profile_counts[0],
                  ps.profile_counts[1], ps.profile_counts[2],
                  ps.profile_counts[3]);
    table.Add(mix);
  }
  table.RenderPretty(std::cout);

  std::printf("\ncumulative repairs over time (TSV):\n");
  std::printf("# day");
  for (const auto& obs : network.observers()) std::printf("\t%s", obs.name.c_str());
  std::printf("\n");
  const size_t samples = network.observers().front().cumulative_repairs.samples().size();
  const size_t step = samples > 20 ? samples / 20 : 1;
  for (size_t i = 0; i < samples; i += step) {
    std::printf("%.0f", p2p::sim::RoundsToDays(
                            network.observers()[0].cumulative_repairs.samples()[i].first));
    for (const auto& obs : network.observers()) {
      std::printf("\t%.0f", obs.cumulative_repairs.samples()[i].second);
    }
    std::printf("\n");
  }
  return 0;
}
